//! End-to-end timing-simulator throughput per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsp_core::{Indexing, PredictorConfig};
use dsp_sim::{ProtocolKind, SimConfig, System, TargetSystem};
use dsp_trace::{Workload, WorkloadSpec};
use dsp_types::SystemConfig;

fn bench_protocols(c: &mut Criterion) {
    let sys = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(1.0 / 64.0);
    let misses_per_node = 500usize;
    let protocols = [
        ("snooping", ProtocolKind::Snooping),
        ("directory", ProtocolKind::Directory),
        (
            "multicast-owner-group",
            ProtocolKind::Multicast(
                PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
            ),
        ),
        (
            "multicast-minimal",
            ProtocolKind::Multicast(PredictorConfig::always_minimal()),
        ),
    ];
    let mut group = c.benchmark_group("protocol_sim");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.throughput(Throughput::Elements((misses_per_node * 16) as u64));
    for (name, protocol) in protocols {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let sim = SimConfig::new(protocol).misses(0, misses_per_node).seed(11);
                let report =
                    System::<4>::new(&sys, TargetSystem::isca03_default(), &spec, sim).run();
                std::hint::black_box(report.runtime_ns)
            })
        });
    }
    group.finish();
}

fn bench_crossbar(c: &mut Criterion) {
    use dsp_interconnect::{Arrivals, Crossbar, InterconnectConfig, Message};
    use dsp_types::{DestSet, MessageClass, NodeId};
    let mut group = c.benchmark_group("crossbar");
    group.throughput(Throughput::Elements(1));
    group.bench_function("unicast_send", |b| {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), 16);
        let mut arrivals = Arrivals::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            let msg: Message = Message {
                src: NodeId::new((t % 16) as usize),
                dests: DestSet::single(NodeId::new(((t + 7) % 16) as usize)),
                class: MessageClass::DataResponse,
            };
            let order = xbar.send_into(t, &msg, &mut arrivals);
            std::hint::black_box((order, arrivals.len()))
        })
    });
    group.bench_function("broadcast_send", |b| {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), 16);
        let mut arrivals = Arrivals::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            let msg: Message = Message {
                src: NodeId::new((t % 16) as usize),
                dests: DestSet::broadcast(16),
                class: MessageClass::Request,
            };
            let order = xbar.send_into(t, &msg, &mut arrivals);
            std::hint::black_box((order, arrivals.len()))
        })
    });
    group.finish();
}

/// Steady-state miss-classification throughput of the open-addressing
/// tracker vs the seed HashMap-backed reference, on the same warmed
/// OLTP access stream `repro hotpath-bench` uses.
fn bench_tracker(c: &mut Criterion) {
    use dsp_bench::experiments::SEED;
    use dsp_coherence::{CoherenceTracker, ReferenceTracker};
    use dsp_trace::TraceRecord;

    let sys = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(1.0 / 64.0);
    let accesses: Vec<TraceRecord> = spec.generator(SEED).take(25_000).collect();
    let mut group = c.benchmark_group("tracker_access");
    group.throughput(Throughput::Elements(accesses.len() as u64));
    group.bench_function("block_state_table", |b| {
        let mut t: CoherenceTracker = CoherenceTracker::new(&sys);
        for rec in &accesses {
            t.access(rec.requester, rec.request(), rec.block());
        }
        b.iter(|| {
            let mut acc = 0u64;
            for rec in &accesses {
                let info = t.access(rec.requester, rec.request(), rec.block());
                acc = acc.wrapping_add(info.sharers_before.bits());
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("hashmap_reference", |b| {
        let mut t: ReferenceTracker = ReferenceTracker::new(&sys);
        for rec in &accesses {
            t.access(rec.requester, rec.request(), rec.block());
        }
        b.iter(|| {
            let mut acc = 0u64;
            for rec in &accesses {
                let info = t.access(rec.requester, rec.request(), rec.block());
                acc = acc.wrapping_add(info.sharers_before.bits());
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_crossbar, bench_tracker);
criterion_main!(benches);
