//! End-to-end timing-simulator throughput per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsp_core::{Indexing, PredictorConfig};
use dsp_sim::{ProtocolKind, SimConfig, System, TargetSystem};
use dsp_trace::{Workload, WorkloadSpec};
use dsp_types::SystemConfig;

fn bench_protocols(c: &mut Criterion) {
    let sys = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(1.0 / 64.0);
    let misses_per_node = 500usize;
    let protocols = [
        ("snooping", ProtocolKind::Snooping),
        ("directory", ProtocolKind::Directory),
        (
            "multicast-owner-group",
            ProtocolKind::Multicast(
                PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
            ),
        ),
        (
            "multicast-minimal",
            ProtocolKind::Multicast(PredictorConfig::always_minimal()),
        ),
    ];
    let mut group = c.benchmark_group("protocol_sim");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.throughput(Throughput::Elements((misses_per_node * 16) as u64));
    for (name, protocol) in protocols {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let sim = SimConfig::new(protocol).misses(0, misses_per_node).seed(11);
                let report = System::new(&sys, TargetSystem::isca03_default(), &spec, sim).run();
                std::hint::black_box(report.runtime_ns)
            })
        });
    }
    group.finish();
}

fn bench_crossbar(c: &mut Criterion) {
    use dsp_interconnect::{Crossbar, InterconnectConfig, Message};
    use dsp_types::{DestSet, MessageClass, NodeId};
    let mut group = c.benchmark_group("crossbar");
    group.throughput(Throughput::Elements(1));
    group.bench_function("broadcast_send", |b| {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), 16);
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            let msg = Message {
                src: NodeId::new((t % 16) as usize),
                dests: DestSet::broadcast(16),
                class: MessageClass::Request,
            };
            std::hint::black_box(xbar.send(t, &msg))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_crossbar);
criterion_main!(benches);
