//! Throughput of the synthetic workload generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsp_trace::{Workload, WorkloadSpec};
use dsp_types::SystemConfig;

fn bench_generators(c: &mut Criterion) {
    let config = SystemConfig::isca03();
    let mut group = c.benchmark_group("tracegen");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.throughput(Throughput::Elements(10_000));
    for w in Workload::ALL {
        let spec = WorkloadSpec::preset(w, &config).scaled(1.0 / 16.0);
        group.bench_function(BenchmarkId::from_parameter(w.name()), |b| {
            b.iter_with_setup(
                || spec.generator(7),
                |gen| {
                    let n = gen.take(10_000).count();
                    std::hint::black_box(n)
                },
            )
        });
    }
    group.finish();
}

fn bench_coherence_tracking(c: &mut Criterion) {
    use dsp_coherence::CoherenceTracker;
    let config = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 16.0);
    let trace: Vec<_> = spec.generator(7).take(50_000).collect();
    let mut group = c.benchmark_group("coherence");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("tracker_access", |b| {
        b.iter_with_setup(
            || CoherenceTracker::<4>::new(&config),
            |mut tracker| {
                for rec in &trace {
                    std::hint::black_box(tracker.access(rec.requester, rec.request(), rec.block()));
                }
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_coherence_tracking);
criterion_main!(benches);
