//! Training-delivery throughput: lazy per-node inboxes vs the eager
//! per-arrival events, swept across destination-set fan-out.
//!
//! Each benchmark runs the full timing simulator on one shared trace
//! partition under both [`TrainingMode`]s. The protocols span the
//! fan-out regimes of the paper's design space: `Always-Minimal` is the
//! unicast-like endpoint (requester + home only — almost nothing to
//! train), `Owner-Group` is the balanced policy (small multicast sets),
//! and `Broadcast-if-Shared` is the latency-conscious endpoint whose
//! shared-data broadcasts produce one training arrival per node per
//! miss — the regime where the eager path queues O(misses × nodes)
//! wheel events and the lazy inboxes win most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsp_core::{Indexing, PredictorConfig};
use dsp_sim::{ProtocolKind, SimConfig, System, TargetSystem, TracePartition, TrainingMode};
use dsp_trace::{Workload, WorkloadSpec};
use dsp_types::SystemConfig;

const SEED: u64 = 0x15CA_2003;
const WARMUP: usize = 50;
const MEASURED: usize = 200;

fn bench_training(c: &mut Criterion) {
    let mb = Indexing::Macroblock { bytes: 1024 };
    let fanouts = [
        ("unicast", PredictorConfig::always_minimal()),
        ("owner-group", PredictorConfig::owner_group().indexing(mb)),
        (
            "broadcast",
            PredictorConfig::broadcast_if_shared().indexing(mb),
        ),
    ];
    let mut group = c.benchmark_group("predictor_train");
    for nodes in [16usize, 64] {
        let config = SystemConfig::builder()
            .num_nodes(nodes)
            .build()
            .expect("valid node count");
        let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 64.0);
        let partition = TracePartition::build(&spec, SEED, nodes, WARMUP + MEASURED);
        group.throughput(Throughput::Elements((MEASURED * nodes) as u64));
        for (fanout, predictor) in &fanouts {
            for (mode_name, mode) in [("eager", TrainingMode::Eager), ("lazy", TrainingMode::Lazy)]
            {
                let id = BenchmarkId::new(format!("{fanout}/{mode_name}"), nodes);
                group.bench_function(id, |b| {
                    b.iter(|| {
                        let sim = SimConfig::new(ProtocolKind::Multicast(*predictor))
                            .misses(WARMUP, MEASURED)
                            .seed(SEED)
                            .training(mode);
                        let report = System::<4>::with_partition(
                            &config,
                            TargetSystem::isca03_default(),
                            &spec,
                            sim,
                            partition.clone(),
                        )
                        .run();
                        std::hint::black_box(report.measured_misses)
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
