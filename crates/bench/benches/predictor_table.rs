//! Predictor-table throughput: flat set arrays + open addressing vs
//! the seed `Vec<Vec<Way>>` + `HashMap` implementation.
//!
//! The operation mix mirrors the policy layer: a lookup per predict,
//! a train every other access (allocating on every sixth, the paper's
//! allocate-on-insufficient policy firing), over a colliding key
//! stream sized like a real predictor working set (a few thousand
//! distinct macroblocks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsp_core::{Capacity, PredictorTable, ReferencePredictorTable};

fn keys(n: usize) -> Vec<u64> {
    let mut x = dsp_types::hash::FX_MIX;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) % 4_096
        })
        .collect()
}

fn bench_tables(c: &mut Criterion) {
    let stream = keys(20_000);
    let capacities = [
        ("isca03-8k-4way", Capacity::ISCA03),
        ("unbounded", Capacity::Unbounded),
    ];
    let mut group = c.benchmark_group("predictor_table");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (name, capacity) in capacities {
        group.bench_function(BenchmarkId::new("flat", name), |b| {
            b.iter(|| {
                let mut t: PredictorTable<u64> = PredictorTable::new(capacity);
                let mut acc = 0u64;
                for (i, &key) in stream.iter().enumerate() {
                    acc = acc.wrapping_add(t.lookup(key).copied().unwrap_or(0));
                    if i % 2 == 0 {
                        t.train(key, i % 6 == 0, |e| *e = e.wrapping_add(1));
                    }
                }
                std::hint::black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("seed", name), |b| {
            b.iter(|| {
                let mut t: ReferencePredictorTable<u64> = ReferencePredictorTable::new(capacity);
                let mut acc = 0u64;
                for (i, &key) in stream.iter().enumerate() {
                    acc = acc.wrapping_add(t.lookup(key).copied().unwrap_or(0));
                    if i % 2 == 0 {
                        t.train(key, i % 6 == 0, |e| *e = e.wrapping_add(1));
                    }
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
