//! Microbenchmarks of predictor lookup + training throughput, per
//! policy and indexing scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsp_core::{Capacity, Indexing, PredictQuery, PredictorConfig, TrainEvent};
use dsp_types::{BlockAddr, DestSet, NodeId, Owner, Pc, ReqType, SystemConfig};

fn query(i: u64) -> PredictQuery {
    let block = BlockAddr::new(i % 4096);
    let requester = NodeId::new((i % 16) as usize);
    PredictQuery {
        block,
        pc: Pc::new(0x1000 + (i % 512) * 4),
        requester,
        req: if i.is_multiple_of(3) {
            ReqType::GetExclusive
        } else {
            ReqType::GetShared
        },
        minimal: DestSet::single(requester).with(block.home(16)),
    }
}

fn train_event(i: u64) -> TrainEvent {
    if i.is_multiple_of(2) {
        TrainEvent::DataResponse {
            block: BlockAddr::new(i % 4096),
            pc: Pc::new(0x1000 + (i % 512) * 4),
            responder: if i.is_multiple_of(5) {
                Owner::Memory
            } else {
                Owner::Node(NodeId::new(((i / 2) % 16) as usize))
            },
            req: ReqType::GetShared,
            minimal_sufficient: i.is_multiple_of(7),
        }
    } else {
        TrainEvent::OtherRequest {
            block: BlockAddr::new(i % 4096),
            requester: NodeId::new(((i / 3) % 16) as usize),
            req: ReqType::GetExclusive,
        }
    }
}

fn bench_policies(c: &mut Criterion) {
    let sys = SystemConfig::isca03();
    let configs = [
        ("owner", PredictorConfig::owner()),
        (
            "broadcast-if-shared",
            PredictorConfig::broadcast_if_shared(),
        ),
        ("group", PredictorConfig::group()),
        ("owner-group", PredictorConfig::owner_group()),
        ("sticky-spatial", PredictorConfig::sticky_spatial(1)),
    ];
    let mut group = c.benchmark_group("predict_train");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(1));
    for (name, config) in configs {
        let mut p = config.build(&sys);
        // Pre-train so predictions exercise real entries.
        for i in 0..10_000u64 {
            p.train(&train_event(i));
        }
        let mut i = 0u64;
        group.bench_function(BenchmarkId::new("predict", name), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                std::hint::black_box(p.predict(&query(i)))
            })
        });
        let mut j = 0u64;
        group.bench_function(BenchmarkId::new("train", name), |b| {
            b.iter(|| {
                j = j.wrapping_add(1);
                p.train(&train_event(j));
            })
        });
    }
    group.finish();
}

fn bench_indexing(c: &mut Criterion) {
    let sys = SystemConfig::isca03();
    let mut group = c.benchmark_group("indexing");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, ix) in [
        ("block", Indexing::DataBlock),
        ("macroblock-1024", Indexing::Macroblock { bytes: 1024 }),
        ("pc", Indexing::ProgramCounter),
    ] {
        let mut p = PredictorConfig::group()
            .indexing(ix)
            .entries(Capacity::ISCA03)
            .build(&sys);
        for i in 0..10_000u64 {
            p.train(&train_event(i));
        }
        let mut i = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                std::hint::black_box(p.predict(&query(i)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_indexing);
criterion_main!(benches);
