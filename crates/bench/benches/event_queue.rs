//! Event-queue throughput: the timing wheel vs the seed binary heap.
//!
//! The schedule is the simulator's steady state — the queue holds
//! `depth` events and every pop schedules a successor at a small delta,
//! with a far-future tail (every 16th delta) exercising the wheel's
//! overflow level. Depths bracket the regimes the scaling study hits:
//! 64 ≈ a 16-node run, 1024 ≈ a 256-node run with multiple outstanding
//! misses per node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsp_sim::{Event, ReferenceQueue, WheelQueue};

fn deltas(n: usize) -> Vec<u64> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..n)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let near = 1 + (x >> 33) % 431;
            if i % 16 == 0 {
                near + 6000
            } else {
                near
            }
        })
        .collect()
}

fn bench_queues(c: &mut Criterion) {
    let schedule = deltas(20_000);
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(schedule.len() as u64));
    for depth in [64usize, 1024] {
        group.bench_function(BenchmarkId::new("wheel", depth), |b| {
            b.iter(|| {
                let mut q = WheelQueue::new();
                let mut acc = 0u64;
                for (i, &d) in schedule.iter().take(depth).enumerate() {
                    q.push(d, Event::Complete { req: i });
                }
                for &d in &schedule {
                    let (now, _) = q.pop().expect("primed");
                    acc = acc.wrapping_add(now);
                    q.push(now + d, Event::Complete { req: 0 });
                }
                std::hint::black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("heap", depth), |b| {
            b.iter(|| {
                let mut q = ReferenceQueue::new();
                let mut acc = 0u64;
                for (i, &d) in schedule.iter().take(depth).enumerate() {
                    q.push(d, Event::Complete { req: i });
                }
                for &d in &schedule {
                    let (now, _) = q.pop().expect("primed");
                    acc = acc.wrapping_add(now);
                    q.push(now + d, Event::Complete { req: 0 });
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
