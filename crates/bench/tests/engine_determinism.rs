//! Determinism and trace-sharing equivalence tests for the sweep
//! engine (ISSUE 1 acceptance: parallel output must be byte-identical
//! to single-threaded output, and shared traces must change nothing;
//! ISSUE 4 acceptance: any shard partition plus any crash/resume point
//! must merge byte-identical to the serial path).

use std::path::PathBuf;

use dsp_bench::engine::{
    merge_journals, Cell, CellOutput, ExperimentPlan, ShardSpec, SweepRunner, SweepSession,
};
use dsp_bench::{experiments, Scale};
use dsp_core::{Capacity, Indexing, PredictorConfig};
use dsp_trace::{TraceRecord, Workload, WorkloadSpec};
use dsp_types::SystemConfig;
use proptest::prelude::*;

fn tiny() -> Scale {
    Scale {
        footprint: 1.0 / 256.0,
        trace_warmup: 500,
        trace_measured: 2_000,
        sim_warmup: 20,
        sim_measured: 100,
        sim_runs: 1,
    }
}

/// Acceptance: a parallel run of Table 2 + Figure 5 produces rows
/// byte-identical to a forced single-thread run.
#[test]
fn parallel_table2_fig5_match_single_thread() {
    let scale = tiny();
    let serial = SweepRunner::serial();
    let parallel = SweepRunner::with_threads(8);
    for plan_of in [experiments::table2_plan, experiments::fig5_plan] {
        let s = serial.run(&plan_of(&scale));
        let p = parallel.run(&plan_of(&scale));
        assert_eq!(s.to_csv(), p.to_csv(), "CSV must be byte-identical");
        assert_eq!(
            s.to_string(),
            p.to_string(),
            "rendered table must be byte-identical"
        );
    }
}

/// The same holds across every named experiment at tiny scale, with a
/// runner whose trace cache is already warm from previous plans.
#[test]
fn all_experiments_deterministic_across_thread_counts() {
    let scale = tiny();
    let serial = SweepRunner::serial();
    let parallel = SweepRunner::with_threads(4);
    // The model checker and timing sims dominate at any scale; keep the
    // cross-product experiments and skip only the slowest two drivers.
    for name in experiments::ALL_EXPERIMENTS {
        if matches!(*name, "fig7" | "fig8") {
            continue;
        }
        let s = serial.run(&experiments::plan_for(name, &scale).expect("known name"));
        let p = parallel.run(&experiments::plan_for(name, &scale).expect("known name"));
        assert_eq!(s.to_csv(), p.to_csv(), "{name} diverged across threads");
    }
}

/// Acceptance: evaluating a predictor against the runner's shared
/// `Arc<[TraceRecord]>` yields the same `TradeoffPoint` as evaluating
/// against a per-cell regenerated trace (the seed drivers' behavior).
#[test]
fn trace_sharing_matches_per_cell_regeneration() {
    let scale = tiny();
    let config = SystemConfig::isca03();
    let predictor = PredictorConfig::group()
        .indexing(Indexing::Macroblock { bytes: 1024 })
        .entries(Capacity::ISCA03);
    let build = || {
        let mut plan = ExperimentPlan::new("equiv", &["label"], &scale);
        for workload in [Workload::Oltp, Workload::Slashcode] {
            plan.push(Cell::Baselines { config, workload });
            plan.push(Cell::Tradeoff {
                config,
                workload,
                predictor,
            });
        }
        plan
    };
    let shared = SweepRunner::new().run_cells(&build());
    let regenerated = SweepRunner::new().share_traces(false).run_cells(&build());
    assert_eq!(shared.len(), regenerated.len());
    for (a, b) in shared.iter().zip(&regenerated) {
        match (a, b) {
            (CellOutput::Tradeoff(x), CellOutput::Tradeoff(y)) => {
                assert_eq!(x, y, "shared-trace TradeoffPoint must be identical");
            }
            (
                CellOutput::Baselines {
                    snooping: s1,
                    directory: d1,
                },
                CellOutput::Baselines {
                    snooping: s2,
                    directory: d2,
                },
            ) => {
                assert_eq!(s1, s2);
                assert_eq!(d1, d2);
            }
            other => panic!("mismatched outputs: {other:?}"),
        }
    }
}

/// The shared trace really is the generator's stream: pulling the key's
/// records out of a runner-driven evaluation equals generating afresh.
#[test]
fn shared_trace_equals_fresh_generation() {
    let scale = tiny();
    let config = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(scale.footprint);
    let fresh: Vec<TraceRecord> = spec
        .generator(experiments::SEED)
        .take(scale.trace_warmup + scale.trace_measured)
        .collect();
    // Run one cell through the engine, then evaluate the same predictor
    // directly over the fresh trace; identical points prove the shared
    // trace is byte-for-byte the generator's stream.
    let predictor = PredictorConfig::owner();
    let mut plan = ExperimentPlan::new("fresh", &["label"], &scale);
    plan.push(Cell::Tradeoff {
        config,
        workload: Workload::Oltp,
        predictor,
    });
    let outputs = SweepRunner::new().run_cells(&plan);
    let direct = dsp_analysis::TradeoffEvaluator::new(&config)
        .warmup(scale.trace_warmup)
        .run(fresh.iter().copied(), &predictor);
    assert_eq!(*outputs[0].tradeoff(), direct);
}

/// Builds a randomized trace-driven plan: a nonempty subset of three
/// workloads (from `workload_mask`), each with its baselines and the
/// first `predictors` predictor configurations.
fn random_plan(scale: &Scale, workload_mask: usize, predictors: usize) -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let all_predictors = [
        PredictorConfig::owner().indexing(Indexing::Macroblock { bytes: 1024 }),
        PredictorConfig::group(),
        PredictorConfig::broadcast_if_shared().entries(Capacity::ISCA03),
    ];
    let mut plan = ExperimentPlan::new(
        "proptest-plan",
        &["workload", "label", "msgs", "indirections"],
        scale,
    );
    for (bit, workload) in [Workload::Oltp, Workload::Apache, Workload::Ocean]
        .into_iter()
        .enumerate()
    {
        if workload_mask & (1 << bit) == 0 {
            continue;
        }
        plan.push(Cell::Baselines { config, workload });
        for predictor in all_predictors.iter().take(predictors) {
            plan.push(Cell::Tradeoff {
                config,
                workload,
                predictor: *predictor,
            });
        }
    }
    plan.render(|cells, outputs, table| {
        for (cell, output) in cells.iter().zip(outputs) {
            let workload = cell.workload().expect("trace cell").name().to_string();
            let mut row = |label: &str, msgs: u64, ind: u64| {
                table.row([
                    workload.clone(),
                    label.to_string(),
                    msgs.to_string(),
                    ind.to_string(),
                ]);
            };
            match output {
                CellOutput::Baselines {
                    snooping,
                    directory,
                } => {
                    for p in [snooping, directory] {
                        row(&p.label, p.request_messages, p.indirections);
                    }
                }
                CellOutput::Tradeoff(p) => row(&p.label, p.request_messages, p.indirections),
                other => panic!("unexpected output {other:?}"),
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ISSUE 4 acceptance: for random plans, any `ShardSpec` partition
    /// plus a simulated mid-run crash (journal truncated to an
    /// arbitrary record boundary plus a torn fragment) and resume
    /// merges byte-identical to the serial path.
    #[test]
    fn shard_crash_resume_merges_byte_identical(
        workload_mask in 1usize..8,
        predictors in 0usize..4,
        shards in 1usize..5,
        crash_keep in 0usize..4,
        torn in proptest::arbitrary::any::<bool>(),
    ) {
        let scale = tiny();
        let plan = random_plan(&scale, workload_mask, predictors);
        let serial = SweepRunner::serial().run(&plan).to_csv();

        let dir = std::env::temp_dir().join(format!(
            "dsp-prop-shard-{}-{workload_mask}-{predictors}-{shards}-{crash_keep}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Run every shard, journaling to its own file.
        let paths: Vec<PathBuf> = (0..shards)
            .map(|i| dir.join(format!("shard{i}.jsonl")))
            .collect();
        for (i, path) in paths.iter().enumerate() {
            SweepSession::new(&plan)
                .shard(ShardSpec::new(i, shards))
                .threads(1 + i % 3)
                .checkpoint(path)
                .run(&mut [])
                .expect("shard session");
        }

        // Crash shard 0 at an arbitrary point: keep the header plus
        // `crash_keep` records, optionally with a torn fragment of the
        // next record (a process killed mid-write), then resume it.
        let text = std::fs::read_to_string(&paths[0]).expect("read journal");
        let lines: Vec<&str> = text.lines().collect();
        let keep = 1 + crash_keep.min(lines.len() - 1);
        let kept: Vec<String> = lines[..keep].iter().map(|l| l.to_string()).collect();
        let mut remnant = String::new();
        if torn {
            if let Some(next) = lines.get(keep) {
                remnant = next[..next.len() / 2].to_string();
            }
        }
        std::fs::write(&paths[0], format!("{}\n{remnant}", kept.join("\n"))).expect("truncate");
        let resumed = SweepSession::new(&plan)
            .shard(ShardSpec::new(0, shards))
            .checkpoint(&paths[0])
            .resume(true)
            .run(&mut [])
            .expect("resumed session");
        prop_assert_eq!(resumed.replayed, keep - 1, "intact records replay");

        // Any shard partition + any crash point merges byte-identical.
        let merged = merge_journals(&plan, &paths).expect("merge");
        prop_assert_eq!(merged.to_csv(), serial.clone());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// `repro all`-style reuse: one runner serving several plans caches
/// each distinct (workload, config, footprint, seed, length) trace
/// exactly once.
#[test]
fn runner_shares_traces_across_plans() {
    let scale = tiny();
    let runner = SweepRunner::new();
    runner.run(&experiments::table2_plan(&scale));
    assert_eq!(runner.cached_traces(), 6, "one trace per workload");
    runner.run(&experiments::fig5_plan(&scale));
    assert_eq!(
        runner.cached_traces(),
        6,
        "fig5 reuses the characterization traces"
    );
    runner.run(&experiments::scaling_plan(&scale));
    // Scaling adds 8/32/64/128/256-node OLTP traces; the 16-node
    // default config differs from SystemConfig::isca03() only if the
    // builder diverges, so allow either 11 or 12 cached traces.
    assert!(
        (11..=12).contains(&runner.cached_traces()),
        "scaling adds per-node-count traces, got {}",
        runner.cached_traces()
    );
}
