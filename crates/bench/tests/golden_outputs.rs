//! Golden check: experiment output is byte-identical to the
//! pre-refactor (PR 2) outputs — through every execution mode.
//!
//! The goldens under `tests/goldens/` were captured at `--scale quick`
//! immediately before the scheduling-core rebuild (timing-wheel event
//! queue, shared open-addressing table family, 256-bit `DestSet`), so
//! these tests prove the refactors since — queue, tables, set widening,
//! the trace-generator storage swap, the streaming session API with
//! its serde round-trip through checkpoint journals, and now the
//! interconnect topology/fault-injection layer wrapped around the
//! crossbar — are
//! observationally invisible to every table and figure they touch: the
//! trace-driven Table 2 and Figure 5 paths and the timing-simulated
//! Figure 7/8 paths.
//!
//! Each artifact is checked several ways against the same golden bytes:
//!
//! 1. the batch path (`SweepRunner`, a single-shard in-memory session),
//!    under both the lazy (default) and eager training-delivery modes,
//!    with an explicitly-empty toxic chain on the explicit crossbar
//!    topology (the fault-injection layer's identity gate), and — for
//!    timing-sim plans — under per-event dispatch and the explicit
//!    wide `DestSet<4>` monomorphization as well;
//! 2. a 2-shard run — two sessions journaling to JSONL, then
//!    `merge_journals`;
//! 3. a crash-then-resume run — a full journal truncated mid-file, a
//!    resumed session completing it, then a merge of the healed file;
//! 4. (implicitly, by 2 and 3) the serde round-trip of every cell
//!    output through the journal.
//!
//! Compiled only into release test runs (CI's `cargo test --release
//! --workspace`): the quick-scale timing simulations behind fig7/fig8
//! are release-speed workloads, and a byte-identity check on debug
//! builds would add minutes to the tier-1 loop without adding coverage.

#![cfg(not(debug_assertions))]

use std::path::PathBuf;

use dsp_bench::engine::{merge_journals, Cell, ShardSpec, SweepRunner, SweepSession};
use dsp_bench::{experiments, Scale};
use dsp_sim::{DispatchMode, SetWidth, TopologySpec, ToxicSpec, TrainingMode};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsp-golden-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn check(name: &str, golden: &str) {
    let scale = Scale::quick();

    // 1. Batch path (single-shard in-memory session), under BOTH
    //    training-delivery modes: the lazy per-node inboxes (the
    //    default) and the eager per-arrival reference events must
    //    render byte-identical tables — to each other and to the
    //    pre-refactor golden. The eager re-run only happens for plans
    //    with timing-sim cells (fig7/fig8): trace-driven experiments
    //    never touch the simulator, so both modes would execute
    //    identical code there. This is the whole-experiment end of
    //    the eager/lazy equivalence argument; the per-call end lives
    //    in `dsp-sim/tests/train_equivalence.rs`.
    let plan = experiments::plan_for(name, &scale).expect("known experiment");
    let table = SweepRunner::new().run(&plan);
    assert_eq!(
        table.to_csv(),
        golden,
        "{name} batch output (lazy training) diverged from the pre-refactor golden"
    );
    // The fault-injection layer's identity gate: an EXPLICIT empty
    // toxic chain on the explicit crossbar topology must be
    // indistinguishable from never having mentioned either — the
    // no-toxic fast path delegates to the untouched crossbar, so the
    // golden bytes cannot move. (Run 1 above already pins the
    // defaults; this pins the spelled-out form.)
    let clean_plan = experiments::plan_for(name, &scale)
        .expect("known experiment")
        .toxics(ToxicSpec::none())
        .topology(TopologySpec::Crossbar);
    assert_eq!(
        SweepRunner::new().run(&clean_plan).to_csv(),
        golden,
        "{name} output with an explicit empty toxic chain on the explicit crossbar \
         diverged from the golden"
    );

    if plan.cells.iter().any(|c| matches!(c, Cell::Runtime { .. })) {
        let eager_plan = experiments::plan_for(name, &scale)
            .expect("known experiment")
            .training(TrainingMode::Eager);
        assert_eq!(
            SweepRunner::new().run(&eager_plan).to_csv(),
            golden,
            "{name} batch output (eager training) diverged from the pre-refactor golden"
        );

        // Batched dispatch and the compile-time set width are pure
        // performance representations: the per-event loop and the
        // explicit wide (`DestSet<4>`) monomorphization must both
        // render byte-identical tables. (The defaults — batched
        // dispatch, auto width, i.e. `DestSet<1>` at these 16-node
        // configs — are what run 1 above already pinned.)
        let per_event_plan = experiments::plan_for(name, &scale)
            .expect("known experiment")
            .dispatch(DispatchMode::PerEvent);
        assert_eq!(
            SweepRunner::new().run(&per_event_plan).to_csv(),
            golden,
            "{name} batch output (per-event dispatch) diverged from the pre-refactor golden"
        );
        let wide_plan = experiments::plan_for(name, &scale)
            .expect("known experiment")
            .width(SetWidth::Wide);
        assert_eq!(
            SweepRunner::new().run(&wide_plan).to_csv(),
            golden,
            "{name} batch output (wide DestSet) diverged from the pre-refactor golden"
        );
    }

    let dir = tmpdir(name);

    // 2. Two shards journaled to disk, then merged.
    let shard_paths: Vec<PathBuf> = (0..2).map(|i| dir.join(format!("s{i}.jsonl"))).collect();
    for (i, path) in shard_paths.iter().enumerate() {
        SweepSession::new(&plan)
            .shard(ShardSpec::new(i, 2))
            .threads(4)
            .checkpoint(path)
            .run(&mut [])
            .expect("shard session");
    }
    let merged = merge_journals(&plan, &shard_paths).expect("merge");
    assert_eq!(
        merged.to_csv(),
        golden,
        "{name} 2-shard merged output diverged from the golden"
    );

    // 3. Crash after the first journaled cell, then resume.
    let crash_path = dir.join("crash.jsonl");
    SweepSession::new(&plan)
        .checkpoint(&crash_path)
        .run(&mut [])
        .expect("full journaling run");
    let text = std::fs::read_to_string(&crash_path).expect("read journal");
    // Keep the header, the first record, and a torn fragment of the
    // second — the on-disk state of a process killed mid-write.
    let mut kept: Vec<&str> = text.lines().take(2).collect();
    let torn = text.lines().nth(2).expect("at least two records");
    kept.push(&torn[..torn.len() / 2]);
    std::fs::write(&crash_path, kept.join("\n")).expect("truncate journal");
    let resumed = SweepSession::new(&plan)
        .checkpoint(&crash_path)
        .resume(true)
        .run(&mut [])
        .expect("resumed session");
    assert_eq!(resumed.replayed, 1, "{name}: one intact record replays");
    assert_eq!(resumed.executed, plan.len() - 1);
    let healed = merge_journals(&plan, &[crash_path]).expect("merge healed journal");
    assert_eq!(
        healed.to_csv(),
        golden,
        "{name} crash-then-resumed output diverged from the golden"
    );

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn table2_matches_pre_refactor_golden() {
    check("table2", include_str!("goldens/table2.csv"));
}

#[test]
fn fig5_matches_pre_refactor_golden() {
    check("fig5", include_str!("goldens/fig5.csv"));
}

#[test]
fn fig7_matches_pre_refactor_golden() {
    check("fig7", include_str!("goldens/fig7.csv"));
}

#[test]
fn fig8_matches_pre_refactor_golden() {
    check("fig8", include_str!("goldens/fig8.csv"));
}
