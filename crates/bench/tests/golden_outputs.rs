//! Golden check: experiment output is byte-identical to the
//! pre-refactor (PR 2) outputs.
//!
//! The goldens under `tests/goldens/` were captured at `--scale quick`
//! immediately before the scheduling-core rebuild (timing-wheel event
//! queue, shared open-addressing table family, 256-bit `DestSet`), so
//! this test proves the whole refactor — queue, tables, set widening,
//! and the trace-generator storage swap — is observationally invisible
//! to every table and figure it touches: the trace-driven Table 2 and
//! Figure 5 paths and the timing-simulated Figure 7/8 paths.
//!
//! Compiled only into release test runs (CI's `cargo test --release
//! --workspace`): the quick-scale timing simulations behind fig7/fig8
//! are release-speed workloads, and a byte-identity check on debug
//! builds would add minutes to the tier-1 loop without adding coverage.

#![cfg(not(debug_assertions))]

use dsp_bench::engine::SweepRunner;
use dsp_bench::{experiments, Scale};

fn check(name: &str, golden: &str) {
    let scale = Scale::quick();
    let plan = experiments::plan_for(name, &scale).expect("known experiment");
    let table = SweepRunner::new().run(&plan);
    assert_eq!(
        table.to_csv(),
        golden,
        "{name} output diverged from the pre-refactor golden"
    );
}

#[test]
fn table2_matches_pre_refactor_golden() {
    check("table2", include_str!("goldens/table2.csv"));
}

#[test]
fn fig5_matches_pre_refactor_golden() {
    check("fig5", include_str!("goldens/fig5.csv"));
}

#[test]
fn fig7_matches_pre_refactor_golden() {
    check("fig7", include_str!("goldens/fig7.csv"));
}

#[test]
fn fig8_matches_pre_refactor_golden() {
    check("fig8", include_str!("goldens/fig8.csv"));
}
