//! The synthetic miss-stream generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dsp_types::{AccessKind, Address, BlockAddr, NodeId, OpenTable, Pc};

use crate::holders::HolderMap;
use crate::record::TraceRecord;
use crate::spec::{SharingClass, WorkloadSpec};
use crate::zipf::ZipfSampler;

/// Block-number stride separating class pools (2^34 blocks = 1 TiB of
/// address space per pool), so pools never collide.
const POOL_STRIDE_BLOCKS: u64 = 1 << 34;

/// Base of the synthetic text segment PCs, one 16 MiB region per class.
const PC_REGION_BASE: u64 = 0x0040_0000;
const PC_REGION_STRIDE: u64 = 1 << 24;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(dsp_types::hash::FX_MIX);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Probability that a migratory datum returns to its *previous* holder
/// (lock ping-pong between an active pair), versus advancing around the
/// sharing ring or jumping to a random member. Real contended locks are
/// dominated by short-term pairwise exchange — the pattern the paper's
/// Owner policy is designed for — with the contention set drifting over
/// time.
const MIGRATORY_PINGPONG_P: f64 = 0.70;
const MIGRATORY_ADVANCE_P: f64 = 0.22;

/// Probability that a producer-consumer buffer changes producer after a
/// full produce/consume round. Work-sharing buffers rotate the writer
/// role frequently (whoever finishes a task publishes the next one).
const PRODUCER_ROTATE_P: f64 = 0.80;

/// Probability that a read-write-shared unit's current writer hands the
/// role to another group member on a write episode. Writers are sticky
/// at the unit level (a transaction updates several fields of one
/// record before another thread takes over).
const RW_WRITER_ROTATE_P: f64 = 0.18;

/// Per-*macroblock* state of a migratory datum. Migratory structures
/// (connection state, transaction records, lock+data) span several
/// contiguous blocks and migrate as a unit, which is precisely the
/// spatial correlation macroblock-indexed predictors exploit (paper
/// §3.4). `pending_store_off` remembers which block of the unit awaits
/// the store half of its read-modify-write.
#[derive(Clone, Copy, Debug, Default)]
struct MigratoryState {
    holder_slot: u8,
    prev_slot: u8,
    pending_store_off: Option<u8>,
}

/// Per-macroblock state of a producer–consumer buffer.
#[derive(Clone, Copy, Debug)]
enum PcPhase {
    Producing { next_block: u8 },
    Consuming { consumer_slot: u8, next_block: u8 },
}

impl Default for PcPhase {
    fn default() -> Self {
        PcPhase::Producing { next_block: 0 }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct ProducerConsumerState {
    producer_slot: u8,
    phase: PcPhase,
}

/// Runtime state of one class pool.
#[derive(Debug)]
struct ClassState {
    mb_zipf: ZipfSampler,
    pc_zipf: ZipfSampler,
    migratory: OpenTable<MigratoryState>,
    prodcons: OpenTable<ProducerConsumerState>,
    rw_writer: OpenTable<u8>,
    cold_cursor: u64,
}

/// Deterministic, infinite iterator of [`TraceRecord`]s for one
/// [`WorkloadSpec`].
///
/// The generator keeps a MOSI [`HolderMap`] of its own emissions so the
/// stream is coherence-consistent (see that type's docs), and drives one
/// state machine per migratory block / producer-consumer macroblock so
/// idioms interleave realistically instead of appearing in long bursts.
///
/// # Example
///
/// ```
/// use dsp_trace::{Workload, WorkloadSpec};
/// use dsp_types::SystemConfig;
///
/// let spec = WorkloadSpec::preset(Workload::Ocean, &SystemConfig::isca03()).scaled(0.01);
/// let a: Vec<_> = spec.generator(1).take(100).collect();
/// let b: Vec<_> = spec.generator(1).take(100).collect();
/// assert_eq!(a, b, "same seed, same stream");
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    seed: u64,
    rng: SmallRng,
    class_cdf: Vec<f64>,
    classes: Vec<ClassState>,
    holders: HolderMap,
    emitted: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec` seeded with `seed`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let total_weight: f64 = spec.classes().iter().map(|c| c.miss_weight).sum();
        let mut acc = 0.0;
        let class_cdf = spec
            .classes()
            .iter()
            .map(|c| {
                acc += c.miss_weight / total_weight;
                acc
            })
            .collect();
        let classes = spec
            .classes()
            .iter()
            .map(|c| ClassState {
                mb_zipf: ZipfSampler::new(c.macroblocks, c.zipf_exponent),
                pc_zipf: ZipfSampler::new(c.pcs, 0.7),
                migratory: OpenTable::new(),
                prodcons: OpenTable::new(),
                rw_writer: OpenTable::new(),
                cold_cursor: 0,
            })
            .collect();
        TraceGenerator {
            spec,
            seed,
            rng: SmallRng::seed_from_u64(seed ^ 0xd5f0_7a6c_2f1b_9e33),
            class_cdf,
            classes,
            holders: HolderMap::new(),
            emitted: 0,
        }
    }

    /// The workload this generator realizes.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The generator's view of current block holders (useful in tests).
    pub fn holders(&self) -> &HolderMap {
        &self.holders
    }

    /// Number of records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The sharing-group member in `slot` for macroblock `mb` of class
    /// `class_idx`: groups are contiguous rings starting at a
    /// pseudo-random node derived from the macroblock identity, so
    /// blocks within a macroblock share their group (spatial locality)
    /// and groups are spread evenly over the machine.
    fn group_member(&self, class_idx: usize, mb: usize, slot: usize) -> NodeId {
        let n = self.spec.num_nodes();
        let start = splitmix64(self.seed ^ ((class_idx as u64) << 48) ^ (mb as u64)) as usize % n;
        NodeId::new((start + slot) % n)
    }

    fn group_size(&self, class_idx: usize) -> usize {
        self.spec.classes()[class_idx].group_size
    }

    /// Byte address of block `off` within macroblock `mb` of pool
    /// `class_idx`.
    fn block_addr(&self, class_idx: usize, mb: usize, off: u64) -> BlockAddr {
        let bpm = self.spec.blocks_per_macroblock();
        BlockAddr::new((class_idx as u64 + 1) * POOL_STRIDE_BLOCKS + mb as u64 * bpm + off)
    }

    /// Synthetic PC for class `class_idx`, Zipf-distributed over the
    /// class's static instructions.
    fn pick_pc(&mut self, class_idx: usize) -> Pc {
        let rank = self.classes[class_idx].pc_zipf.sample(&mut self.rng) as u64;
        Pc::new(PC_REGION_BASE + class_idx as u64 * PC_REGION_STRIDE + rank * 4)
    }

    fn pick_class(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        match self
            .class_cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite weights"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.class_cdf.len() - 1),
        }
    }

    fn emit(
        &mut self,
        class_idx: usize,
        requester: NodeId,
        kind: AccessKind,
        block: BlockAddr,
    ) -> TraceRecord {
        let pc = self.pick_pc(class_idx);
        self.holders.apply(requester, kind, block);
        self.emitted += 1;
        // Spread accesses across the four 16-byte words of the block so
        // data addresses are not all block-aligned.
        let offset = (splitmix64(self.emitted) % 4) * 16;
        TraceRecord::new(
            requester,
            kind,
            Address::new(block.base().raw() + offset),
            pc,
        )
    }

    fn step_private(&mut self, ci: usize) -> TraceRecord {
        let spec = &self.spec.classes()[ci];
        let bpm = self.spec.blocks_per_macroblock();
        let mb = self.classes[ci].mb_zipf.sample(&mut self.rng);
        let off = self.rng.gen_range(0..bpm);
        let owner = self.group_member(ci, mb, 0);
        let kind = if self.rng.gen_bool(spec.write_frac) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let block = self.block_addr(ci, mb, off);
        self.emit(ci, owner, kind, block)
    }

    fn step_cold(&mut self, ci: usize) -> TraceRecord {
        let spec = &self.spec.classes()[ci];
        let bpm = self.spec.blocks_per_macroblock();
        let total_blocks = spec.macroblocks as u64 * bpm;
        let write_frac = spec.write_frac;
        let cursor = self.classes[ci].cold_cursor;
        self.classes[ci].cold_cursor = cursor.wrapping_add(1);
        let linear = cursor % total_blocks;
        let (mb, off) = ((linear / bpm) as usize, linear % bpm);
        let requester = self.group_member(ci, mb, 0);
        let kind = if self.rng.gen_bool(write_frac) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let block = self.block_addr(ci, mb, off);
        self.emit(ci, requester, kind, block)
    }

    fn step_read_shared(&mut self, ci: usize) -> TraceRecord {
        let bpm = self.spec.blocks_per_macroblock();
        let g = self.group_size(ci);
        let mb = self.classes[ci].mb_zipf.sample(&mut self.rng);
        let off = self.rng.gen_range(0..bpm);
        let slot = self.rng.gen_range(0..g);
        let requester = self.group_member(ci, mb, slot);
        let block = self.block_addr(ci, mb, off);
        self.emit(ci, requester, AccessKind::Load, block)
    }

    fn step_migratory(&mut self, ci: usize) -> TraceRecord {
        let bpm = self.spec.blocks_per_macroblock();
        let g = self.group_size(ci);
        let mb = self.classes[ci].mb_zipf.sample(&mut self.rng);
        let mut state = *self.classes[ci]
            .migratory
            .get_or_insert_with(mb as u64, || MigratoryState {
                holder_slot: 0,
                prev_slot: (1 % g) as u8,
                pending_store_off: None,
            })
            .0;
        let (slot, kind, off) = if let Some(off) = state.pending_store_off.take() {
            (state.holder_slot, AccessKind::Store, off)
        } else {
            // A new read-modify-write episode: pick the unit's next
            // holder with pairwise (ping-pong) affinity, occasionally
            // advancing around the ring or jumping.
            let u: f64 = self.rng.gen();
            let cur = state.holder_slot;
            let next = if g == 1 {
                cur
            } else if u < MIGRATORY_PINGPONG_P && state.prev_slot != cur {
                state.prev_slot
            } else if u < MIGRATORY_PINGPONG_P + MIGRATORY_ADVANCE_P {
                ((cur as usize + 1) % g) as u8
            } else {
                self.rng.gen_range(0..g) as u8
            };
            if next != cur {
                state.prev_slot = cur;
            }
            state.holder_slot = next;
            // Migration means reading what the previous holder wrote:
            // prefer a block of the unit currently owned by the holder
            // being taken over from (a few redraws suffice on a
            // 16-block unit); fall back to any block not already owned
            // by the new holder.
            let holder = self.group_member(ci, mb, next as usize);
            let from = self.group_member(ci, mb, cur as usize);
            let mut off = self.rng.gen_range(0..bpm) as u8;
            let mut fallback = off;
            for _ in 0..6 {
                let candidate = self.block_addr(ci, mb, off as u64);
                let owner = self.holders.get(candidate).owner.node();
                if owner == Some(from) && from != holder {
                    break;
                }
                if owner != Some(holder) {
                    fallback = off;
                }
                off = self.rng.gen_range(0..bpm) as u8;
                if off == fallback {
                    off = (off + 1) % bpm as u8;
                }
            }
            let candidate = self.block_addr(ci, mb, off as u64);
            if self.holders.get(candidate).owner.node() != Some(from) || from == holder {
                off = fallback;
            }
            state.pending_store_off = Some(off);
            (next, AccessKind::Load, off)
        };
        *self.classes[ci]
            .migratory
            .get_mut(mb as u64)
            .expect("inserted above") = state;
        let requester = self.group_member(ci, mb, slot as usize);
        let block = self.block_addr(ci, mb, off as u64);
        self.emit(ci, requester, kind, block)
    }

    fn step_producer_consumer(&mut self, ci: usize) -> TraceRecord {
        let bpm = self.spec.blocks_per_macroblock() as u8;
        let g = self.group_size(ci);
        let mb = self.classes[ci].mb_zipf.sample(&mut self.rng);
        let rotate_producer = self.rng.gen_bool(PRODUCER_ROTATE_P);
        let state = self.classes[ci]
            .prodcons
            .get_or_insert_with(mb as u64, || ProducerConsumerState {
                producer_slot: 0,
                phase: PcPhase::Producing { next_block: 0 },
            })
            .0;
        let (slot, kind, off) = match state.phase {
            PcPhase::Producing { next_block } => {
                let off = next_block;
                if next_block + 1 >= bpm {
                    state.phase = if g > 1 {
                        PcPhase::Consuming {
                            consumer_slot: 1,
                            next_block: 0,
                        }
                    } else {
                        state.producer_slot = ((state.producer_slot as usize + 1) % g) as u8;
                        PcPhase::Producing { next_block: 0 }
                    };
                } else {
                    state.phase = PcPhase::Producing {
                        next_block: next_block + 1,
                    };
                }
                (state.producer_slot, AccessKind::Store, off)
            }
            PcPhase::Consuming {
                consumer_slot,
                next_block,
            } => {
                let off = next_block;
                let slot = ((state.producer_slot as usize + consumer_slot as usize) % g) as u8;
                if next_block + 1 >= bpm {
                    if (consumer_slot as usize) + 1 >= g {
                        // Round finished: producers are mostly stable;
                        // occasionally the role moves on.
                        if rotate_producer {
                            state.producer_slot = ((state.producer_slot as usize + 1) % g) as u8;
                        }
                        state.phase = PcPhase::Producing { next_block: 0 };
                    } else {
                        state.phase = PcPhase::Consuming {
                            consumer_slot: consumer_slot + 1,
                            next_block: 0,
                        };
                    }
                } else {
                    state.phase = PcPhase::Consuming {
                        consumer_slot,
                        next_block: next_block + 1,
                    };
                }
                (slot, AccessKind::Load, off)
            }
        };
        let requester = self.group_member(ci, mb, slot as usize);
        let block = self.block_addr(ci, mb, off as u64);
        self.emit(ci, requester, kind, block)
    }

    fn step_read_write_shared(&mut self, ci: usize) -> TraceRecord {
        let spec_wf = self.spec.classes()[ci].write_frac;
        let bpm = self.spec.blocks_per_macroblock();
        let g = self.group_size(ci);
        let mb = self.classes[ci].mb_zipf.sample(&mut self.rng);
        let off = self.rng.gen_range(0..bpm);
        let block = self.block_addr(ci, mb, off);
        let kind = if self.rng.gen_bool(spec_wf) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let slot = if kind == AccessKind::Store {
            // Writes come from the unit's sticky writer, which
            // occasionally hands the role over.
            let seeded = (splitmix64(self.seed ^ 0x5f5f ^ mb as u64) as usize % g) as u8;
            let rotate = self.rng.gen_bool(RW_WRITER_ROTATE_P);
            let fresh = self.rng.gen_range(0..g) as u8;
            let writer = self.classes[ci]
                .rw_writer
                .get_or_insert_with(mb as u64, || seeded)
                .0;
            if rotate {
                *writer = fresh;
            }
            *writer as usize
        } else {
            // Prefer a reader that does not already hold the block so
            // the emission really is a miss; two tries is enough bias.
            let mut slot = self.rng.gen_range(0..g);
            let holders = self.holders.get(block);
            if holders.can_read(self.group_member(ci, mb, slot)) {
                slot = self.rng.gen_range(0..g);
            }
            slot
        };
        let requester = self.group_member(ci, mb, slot);
        self.emit(ci, requester, kind, block)
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let ci = self.pick_class();
        let class = self.spec.classes()[ci].class;
        Some(match class {
            SharingClass::Private => self.step_private(ci),
            SharingClass::ColdFootprint => self.step_cold(ci),
            SharingClass::ReadShared => self.step_read_shared(ci),
            SharingClass::Migratory => self.step_migratory(ci),
            SharingClass::ProducerConsumer => self.step_producer_consumer(ci),
            SharingClass::ReadWriteShared => self.step_read_write_shared(ci),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::MAX, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClassSpec, Workload};
    use dsp_types::SystemConfig;
    use std::collections::HashSet;

    fn spec_of(class: SharingClass, group: usize, wf: f64) -> WorkloadSpec {
        WorkloadSpec::new(
            "unit",
            16,
            16,
            5.0,
            vec![ClassSpec {
                class,
                miss_weight: 1.0,
                macroblocks: 8,
                group_size: group,
                write_frac: wf,
                zipf_exponent: 0.8,
                pcs: 16,
            }],
        )
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(Workload::Apache, &cfg).scaled(0.01);
        let a: Vec<_> = spec.generator(99).take(5_000).collect();
        let b: Vec<_> = spec.generator(99).take(5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(Workload::Apache, &cfg).scaled(0.01);
        let a: Vec<_> = spec.generator(1).take(1_000).collect();
        let b: Vec<_> = spec.generator(2).take(1_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn private_blocks_have_one_requester_each() {
        let spec = spec_of(SharingClass::Private, 1, 0.3);
        let mut per_block: std::collections::HashMap<u64, HashSet<usize>> = Default::default();
        for rec in spec.generator(5).take(20_000) {
            per_block
                .entry(rec.block().number())
                .or_default()
                .insert(rec.requester.index());
        }
        for (block, reqs) in per_block {
            assert_eq!(reqs.len(), 1, "private block {block} touched by {reqs:?}");
        }
    }

    #[test]
    fn migratory_emits_load_store_pairs_by_same_node() {
        let spec = spec_of(SharingClass::Migratory, 4, 0.5);
        // Track last op per block: a store must follow a load by the same requester.
        let mut last_load: std::collections::HashMap<u64, NodeId> = Default::default();
        for rec in spec.generator(3).take(20_000) {
            match rec.kind {
                AccessKind::Load => {
                    last_load.insert(rec.block().number(), rec.requester);
                }
                AccessKind::Store => {
                    let loader = last_load.get(&rec.block().number());
                    assert_eq!(loader, Some(&rec.requester), "store by non-loader");
                }
            }
        }
    }

    #[test]
    fn migratory_rotates_over_group() {
        let spec = spec_of(SharingClass::Migratory, 4, 0.5);
        let mut per_block: std::collections::HashMap<u64, HashSet<usize>> = Default::default();
        for rec in spec.generator(3).take(40_000) {
            per_block
                .entry(rec.block().number())
                .or_default()
                .insert(rec.requester.index());
        }
        let multi = per_block.values().filter(|s| s.len() >= 3).count();
        assert!(
            multi > per_block.len() / 2,
            "migratory blocks should rotate over their group"
        );
        for reqs in per_block.values() {
            assert!(reqs.len() <= 4, "migratory group bounded by group_size");
        }
    }

    #[test]
    fn read_shared_is_load_only() {
        let spec = spec_of(SharingClass::ReadShared, 16, 0.0);
        assert!(spec
            .generator(1)
            .take(5_000)
            .all(|r| r.kind == AccessKind::Load));
    }

    #[test]
    fn producer_consumer_alternates_phases() {
        let spec = spec_of(SharingClass::ProducerConsumer, 4, 0.0);
        // Consumers read data most recently written by the producer:
        // every load must hit a block previously stored.
        let mut stored: HashSet<u64> = Default::default();
        let mut loads = 0usize;
        let mut stores = 0usize;
        for rec in spec.generator(9).take(30_000) {
            match rec.kind {
                AccessKind::Store => {
                    stored.insert(rec.block().number());
                    stores += 1;
                }
                AccessKind::Load => {
                    assert!(
                        stored.contains(&rec.block().number()),
                        "load before any store"
                    );
                    loads += 1;
                }
            }
        }
        // Group of 4: one producing pass, three consuming passes.
        let ratio = loads as f64 / stores as f64;
        assert!((2.0..4.0).contains(&ratio), "load/store ratio {ratio}");
    }

    #[test]
    fn rw_shared_respects_group_membership() {
        let spec = spec_of(SharingClass::ReadWriteShared, 4, 0.3);
        let mut per_mb: std::collections::HashMap<u64, HashSet<usize>> = Default::default();
        for rec in spec.generator(11).take(30_000) {
            per_mb
                .entry(rec.block().number() / 16)
                .or_default()
                .insert(rec.requester.index());
        }
        for (mb, reqs) in per_mb {
            assert!(
                reqs.len() <= 4,
                "macroblock {mb} touched by {} nodes",
                reqs.len()
            );
        }
    }

    #[test]
    fn cold_walks_unique_blocks() {
        let spec = spec_of(SharingClass::ColdFootprint, 1, 0.0);
        let blocks: HashSet<u64> = spec
            .generator(1)
            .take(128)
            .map(|r| r.block().number())
            .collect();
        // 8 macroblocks * 16 blocks = 128 distinct blocks in one sweep.
        assert_eq!(blocks.len(), 128);
    }

    #[test]
    fn pcs_are_bounded_per_class() {
        let spec = spec_of(SharingClass::Migratory, 4, 0.5);
        let pcs: HashSet<u64> = spec.generator(1).take(10_000).map(|r| r.pc.raw()).collect();
        assert!(
            pcs.len() <= 16,
            "observed {} PCs, spec allows 16",
            pcs.len()
        );
    }

    #[test]
    fn addresses_fall_in_pool_regions() {
        let cfg = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(Workload::SpecJbb, &cfg).scaled(0.002);
        for rec in spec.generator(1).take(5_000) {
            let pool = rec.block().number() / POOL_STRIDE_BLOCKS;
            assert!(
                (1..=spec.classes().len() as u64).contains(&pool),
                "block outside any pool region"
            );
        }
    }

    #[test]
    fn all_presets_generate() {
        let cfg = SystemConfig::isca03();
        for w in Workload::ALL {
            let spec = WorkloadSpec::preset(w, &cfg).scaled(0.002);
            let count = spec.generator(7).take(2_000).count();
            assert_eq!(count, 2_000, "{w}");
        }
    }
}
