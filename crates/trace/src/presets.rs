//! Calibrated per-workload generator parameters.
//!
//! Each preset targets the published characteristics of its workload
//! (paper Table 2 and Figures 2–4):
//!
//! | Workload  | Footprint (1 KiB mblocks) | Miss PCs | Misses/1k instr | % dir. indirections |
//! |-----------|---------------------------|----------|-----------------|---------------------|
//! | Apache    | ~71 k                     | 18 745   | 5.9             | 89 %                |
//! | Barnes-Hut| ~13 k                     | 7 912    | 0.4             | 96 %                |
//! | Ocean     | ~61 k                     | 11 384   | 0.5             | 58 %                |
//! | OLTP      | ~125 k                    | 21 921   | 7.0             | 73 %                |
//! | Slashcode | ~316 k                    | 42 770   | 1.0             | 35 %                |
//! | SPECjbb   | ~558 k                    | 24 023   | 3.3             | 41 %                |
//!
//! The directory-indirection percentage is (to first order) the combined
//! miss weight of the classes whose misses another cache must observe
//! (migratory, producer–consumer, read-write shared), because private /
//! cold / read-only misses are sourced by memory. Sharing-group sizes
//! implement the degree-of-sharing shapes of Figure 3(b): commercial
//! workloads concentrate misses on widely shared blocks, while Ocean's
//! column-blocked stencils keep its groups at 2–4 neighbors.

use dsp_types::SystemConfig;

use crate::spec::{ClassSpec, SharingClass, Workload, WorkloadSpec};

fn class(
    class: SharingClass,
    miss_weight: f64,
    macroblocks: usize,
    group_size: usize,
    write_frac: f64,
    zipf_exponent: f64,
    pcs: usize,
) -> ClassSpec {
    ClassSpec {
        class,
        miss_weight,
        macroblocks,
        group_size,
        write_frac,
        zipf_exponent,
        pcs,
    }
}

/// Builds the calibrated preset for `workload` on `config`-sized systems.
///
/// Presets are defined for the paper's 16-node target; other node counts
/// clamp sharing-group sizes to the node count.
pub(crate) fn preset(workload: Workload, config: &SystemConfig) -> WorkloadSpec {
    let n = config.num_nodes();
    let g = |want: usize| want.min(n); // clamp group size to system size
    use SharingClass::*;
    let classes = match workload {
        // Apache: high miss rate, 89% of misses need another cache.
        // Heavy migratory (connection state, locks) plus widely shared
        // read-write data (caches of file metadata).
        Workload::Apache => vec![
            class(Migratory, 0.49, 3_000, g(16), 0.5, 0.85, 5_200),
            class(ReadWriteShared, 0.14, 1_500, g(16), 0.30, 0.90, 4_300),
            class(ProducerConsumer, 0.26, 1_200, g(6), 0.0, 0.80, 3_600),
            class(ReadShared, 0.03, 4_000, g(16), 0.0, 0.70, 1_400),
            class(Private, 0.04, 12_000, 1, 0.30, 0.50, 2_500),
            class(ColdFootprint, 0.04, 49_300, 1, 0.10, 0.05, 1_745),
        ],
        // Barnes-Hut: tiny footprint, nearly all misses are sharing
        // misses (96%): bodies migrate between processors each timestep.
        Workload::BarnesHut => vec![
            class(Migratory, 0.55, 1_500, g(16), 0.5, 0.80, 3_000),
            class(ReadWriteShared, 0.25, 400, g(16), 0.35, 0.90, 1_800),
            class(ProducerConsumer, 0.16, 300, g(4), 0.0, 0.80, 1_500),
            class(ReadShared, 0.01, 1_000, g(16), 0.0, 0.70, 500),
            class(Private, 0.02, 2_000, 1, 0.30, 0.50, 800),
            class(ColdFootprint, 0.01, 7_800, 1, 0.10, 0.05, 312),
        ],
        // Ocean: column-blocked stencil; sharing is between grid
        // neighbors (groups of 2-4), and misses concentrate on blocks
        // touched by <= 4 processors (Fig. 3b). 58% indirections.
        Workload::Ocean => vec![
            class(ProducerConsumer, 0.28, 2_000, g(2), 0.0, 0.75, 2_400),
            class(Migratory, 0.20, 1_500, g(2), 0.5, 0.75, 2_000),
            class(ReadWriteShared, 0.10, 800, g(4), 0.40, 0.80, 1_200),
            class(ReadShared, 0.05, 1_500, g(4), 0.0, 0.70, 800),
            class(Private, 0.30, 20_000, 1, 0.40, 0.45, 3_800),
            class(ColdFootprint, 0.07, 35_200, 1, 0.10, 0.05, 1_184),
        ],
        // OLTP: lock- and row-migratory dominated, 73% indirections,
        // highest miss rate of the suite.
        Workload::Oltp => vec![
            class(Migratory, 0.47, 4_000, g(16), 0.5, 0.90, 7_200),
            class(ReadWriteShared, 0.13, 2_500, g(16), 0.25, 0.90, 4_400),
            class(ProducerConsumer, 0.13, 1_500, g(8), 0.0, 0.80, 3_300),
            class(ReadShared, 0.07, 6_000, g(16), 0.0, 0.70, 1_900),
            class(Private, 0.13, 25_000, 1, 0.30, 0.50, 3_400),
            class(ColdFootprint, 0.07, 86_000, 1, 0.10, 0.05, 1_721),
        ],
        // Slashcode: biggest request diversity, only 35% indirections —
        // most misses are cold/private in its large footprint.
        Workload::Slashcode => vec![
            class(Migratory, 0.15, 2_000, g(16), 0.5, 0.90, 6_400),
            class(ReadWriteShared, 0.12, 1_500, g(16), 0.25, 0.90, 5_100),
            class(ProducerConsumer, 0.08, 1_000, g(6), 0.0, 0.80, 3_400),
            class(ReadShared, 0.15, 12_000, g(16), 0.0, 0.70, 6_400),
            class(Private, 0.25, 60_000, 1, 0.30, 0.50, 10_700),
            class(ColdFootprint, 0.25, 239_500, 1, 0.10, 0.03, 10_770),
        ],
        // SPECjbb: huge Java heap, 41% indirections; the hottest ~1000
        // blocks carry ~80% of cache-to-cache misses (Fig. 4a), hence
        // the steep Zipf exponents on the shared pools.
        Workload::SpecJbb => vec![
            class(Migratory, 0.20, 2_500, g(16), 0.5, 0.95, 4_800),
            class(ReadWriteShared, 0.15, 1_200, g(16), 0.30, 0.95, 3_600),
            class(ProducerConsumer, 0.06, 800, g(4), 0.0, 0.85, 1_400),
            class(ReadShared, 0.12, 8_000, g(16), 0.0, 0.70, 2_900),
            class(Private, 0.30, 100_000, 1, 0.30, 0.50, 7_200),
            class(ColdFootprint, 0.17, 445_500, 1, 0.10, 0.03, 4_123),
        ],
    };
    let mpki = match workload {
        Workload::Apache => 5.9,
        Workload::BarnesHut => 0.4,
        Workload::Ocean => 0.5,
        Workload::Oltp => 7.0,
        Workload::Slashcode => 1.0,
        Workload::SpecJbb => 3.3,
    };
    WorkloadSpec::new(
        workload.name(),
        n,
        config.macroblock_bytes() / config.block_bytes(),
        mpki,
        classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First-order indirection estimate: weight of cache-sourced classes.
    fn sharing_weight(spec: &WorkloadSpec) -> f64 {
        let total: f64 = spec.classes().iter().map(|c| c.miss_weight).sum();
        let sharing: f64 = spec
            .classes()
            .iter()
            .filter(|c| {
                matches!(
                    c.class,
                    SharingClass::Migratory
                        | SharingClass::ProducerConsumer
                        | SharingClass::ReadWriteShared
                )
            })
            .map(|c| c.miss_weight)
            .sum();
        sharing / total
    }

    #[test]
    fn indirection_weights_match_table2() {
        let config = SystemConfig::isca03();
        let targets = [
            (Workload::Apache, 0.89),
            (Workload::BarnesHut, 0.96),
            (Workload::Ocean, 0.58),
            (Workload::Oltp, 0.73),
            (Workload::Slashcode, 0.35),
            (Workload::SpecJbb, 0.41),
        ];
        for (w, target) in targets {
            let spec = WorkloadSpec::preset(w, &config);
            let got = sharing_weight(&spec);
            assert!(
                (got - target).abs() < 0.03,
                "{w}: sharing weight {got:.2} vs Table 2 target {target:.2}"
            );
        }
    }

    #[test]
    fn footprints_match_table2_macroblock_counts() {
        let config = SystemConfig::isca03();
        // Table 2 "memory touched (1024 byte blocks)" in MB -> macroblocks.
        let targets = [
            (Workload::Apache, 71 << 10),
            (Workload::BarnesHut, 13 << 10),
            (Workload::Ocean, 61 << 10),
            (Workload::Oltp, 125 << 10),
            (Workload::Slashcode, 316 << 10),
            (Workload::SpecJbb, 558 << 10),
        ];
        for (w, mblocks) in targets {
            let spec = WorkloadSpec::preset(w, &config);
            let got = spec.total_macroblocks() as f64;
            let want = mblocks as f64;
            assert!(
                (got - want).abs() / want < 0.05,
                "{w}: {got} macroblocks vs target {want}"
            );
        }
    }

    #[test]
    fn pc_counts_match_table2() {
        let config = SystemConfig::isca03();
        let targets = [
            (Workload::Apache, 18_745),
            (Workload::BarnesHut, 7_912),
            (Workload::Ocean, 11_384),
            (Workload::Oltp, 21_921),
            (Workload::Slashcode, 42_770),
            (Workload::SpecJbb, 24_023),
        ];
        for (w, pcs) in targets {
            let spec = WorkloadSpec::preset(w, &config);
            let got: usize = spec.classes().iter().map(|c| c.pcs).sum();
            let want = pcs as f64;
            assert!(
                (got as f64 - want).abs() / want < 0.05,
                "{w}: {got} PCs vs Table 2 target {want}"
            );
        }
    }

    #[test]
    fn miss_rates_match_table2() {
        let config = SystemConfig::isca03();
        assert_eq!(
            WorkloadSpec::preset(Workload::Oltp, &config).misses_per_kilo_instr(),
            7.0
        );
        assert_eq!(
            WorkloadSpec::preset(Workload::BarnesHut, &config).misses_per_kilo_instr(),
            0.4
        );
    }

    #[test]
    fn ocean_groups_are_small() {
        let config = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(Workload::Ocean, &config);
        for c in spec.classes() {
            assert!(
                c.group_size <= 4,
                "Ocean sharing groups must be <= 4 (Fig. 3b)"
            );
        }
    }

    #[test]
    fn group_sizes_clamp_to_small_systems() {
        let config = SystemConfig::builder().num_nodes(4).build().expect("valid");
        for w in Workload::ALL {
            let spec = preset(w, &config);
            for c in spec.classes() {
                assert!(c.group_size <= 4);
            }
        }
    }
}
