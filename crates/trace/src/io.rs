//! Trace serialization: JSON-lines reading and writing.
//!
//! Generated traces are cheap to re-create (the generators are seeded and
//! deterministic), but persisting them lets experiments pin an exact
//! input, diff runs, or feed external tools. The format is one JSON
//! object per line, mirroring the record schema.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::record::TraceRecord;

/// Error raised while reading or writing a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line was not a valid trace record.
    Parse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Decoder message.
        source: serde_json::Error,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse { line, source } => {
                write!(f, "malformed trace record at line {line}: {source}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes `records` to `out`, one JSON object per line.
///
/// # Errors
///
/// Returns an error if writing to `out` fails.
///
/// # Example
///
/// ```
/// use dsp_trace::{write_trace_json, read_trace_json, TraceRecord};
/// use dsp_types::{AccessKind, Address, NodeId, Pc};
///
/// let recs = vec![TraceRecord::new(NodeId::new(1), AccessKind::Load, Address::new(64), Pc::new(8))];
/// let mut buf = Vec::new();
/// write_trace_json(&mut buf, recs.iter().copied())?;
/// let back = read_trace_json(&buf[..])?;
/// assert_eq!(back, recs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_trace_json<W: Write, I: IntoIterator<Item = TraceRecord>>(
    mut out: W,
    records: I,
) -> Result<usize, TraceIoError> {
    let mut count = 0;
    for rec in records {
        let line = serde_json::to_string(&rec).expect("trace records always serialize");
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        count += 1;
    }
    Ok(count)
}

/// Reads a JSON-lines trace written by [`write_trace_json`].
///
/// Blank lines are skipped.
///
/// # Errors
///
/// Returns an error on I/O failure or if any non-blank line fails to
/// parse (reporting its line number).
pub fn read_trace_json<R: BufRead>(input: R) -> Result<Vec<TraceRecord>, TraceIoError> {
    let mut records = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec = serde_json::from_str(&line).map_err(|source| TraceIoError::Parse {
            line: i + 1,
            source,
        })?;
        records.push(rec);
    }
    Ok(records)
}

/// Magic bytes of the compact binary trace format.
const BIN_MAGIC: &[u8; 4] = b"DSPT";
/// Current binary format version.
const BIN_VERSION: u32 = 1;
/// Bytes per record: requester u8, kind u8, addr u64, pc u64.
const BIN_RECORD_BYTES: usize = 18;

/// Writes `records` in the compact binary format (18 bytes per record
/// plus a 16-byte header) — roughly 5× smaller than JSON lines, for
/// paper-scale million-miss traces.
///
/// # Errors
///
/// Returns an error if writing to `out` fails.
///
/// # Example
///
/// ```
/// use dsp_trace::{read_trace_bin, write_trace_bin, TraceRecord};
/// use dsp_types::{AccessKind, Address, NodeId, Pc};
///
/// let recs = vec![TraceRecord::new(NodeId::new(2), AccessKind::Store, Address::new(128), Pc::new(4))];
/// let mut buf = Vec::new();
/// write_trace_bin(&mut buf, recs.iter().copied())?;
/// assert_eq!(read_trace_bin(&buf[..])?, recs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_trace_bin<W: Write, I: IntoIterator<Item = TraceRecord>>(
    mut out: W,
    records: I,
) -> Result<usize, TraceIoError> {
    // Layout: 8-byte header (magic + version), records, and an 8-byte
    // trailer holding the record count — a trailer rather than a header
    // field so the writer can stream without knowing the count up front.
    out.write_all(BIN_MAGIC)?;
    out.write_all(&BIN_VERSION.to_le_bytes())?;
    let mut count: u64 = 0;
    let mut body = Vec::with_capacity(1024 * BIN_RECORD_BYTES);
    for rec in records {
        body.push(rec.requester.index() as u8);
        body.push(rec.kind.is_store() as u8);
        body.extend_from_slice(&rec.addr.raw().to_le_bytes());
        body.extend_from_slice(&rec.pc.raw().to_le_bytes());
        count += 1;
        if body.len() >= 64 * 1024 {
            out.write_all(&body)?;
            body.clear();
        }
    }
    out.write_all(&body)?;
    out.write_all(&count.to_le_bytes())?;
    Ok(count as usize)
}

/// Reads a binary trace written by [`write_trace_bin`].
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic/version, or a truncated
/// body (the trailer count must match the record bytes present).
pub fn read_trace_bin<R: std::io::Read>(mut input: R) -> Result<Vec<TraceRecord>, TraceIoError> {
    use dsp_types::{AccessKind, Address, NodeId, Pc};
    let mut all = Vec::new();
    input.read_to_end(&mut all)?;
    let bad = |msg: &str| {
        TraceIoError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            msg.to_string(),
        ))
    };
    if all.len() < 16 || &all[0..4] != BIN_MAGIC {
        return Err(bad("not a DSPT binary trace"));
    }
    let version = u32::from_le_bytes(all[4..8].try_into().expect("4 bytes"));
    if version != BIN_VERSION {
        return Err(bad("unsupported binary trace version"));
    }
    let count = u64::from_le_bytes(all[all.len() - 8..].try_into().expect("8 bytes")) as usize;
    let body = &all[8..all.len() - 8];
    if body.len() != count * BIN_RECORD_BYTES {
        return Err(bad("truncated binary trace body"));
    }
    let mut records = Vec::with_capacity(count);
    for chunk in body.chunks_exact(BIN_RECORD_BYTES) {
        let requester = NodeId::new(chunk[0] as usize);
        let kind = if chunk[1] != 0 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let addr = Address::new(u64::from_le_bytes(
            chunk[2..10].try_into().expect("8 bytes"),
        ));
        let pc = Pc::new(u64::from_le_bytes(
            chunk[10..18].try_into().expect("8 bytes"),
        ));
        records.push(TraceRecord::new(requester, kind, addr, pc));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Workload, WorkloadSpec};
    use dsp_types::SystemConfig;

    #[test]
    fn round_trip_generated_trace() {
        let spec = WorkloadSpec::preset(Workload::Oltp, &SystemConfig::isca03()).scaled(0.002);
        let recs: Vec<_> = spec.generator(4).take(500).collect();
        let mut buf = Vec::new();
        let n = write_trace_json(&mut buf, recs.iter().copied()).expect("write");
        assert_eq!(n, 500);
        let back = read_trace_json(&buf[..]).expect("read");
        assert_eq!(back, recs);
    }

    #[test]
    fn skips_blank_lines() {
        let spec = WorkloadSpec::preset(Workload::Oltp, &SystemConfig::isca03()).scaled(0.002);
        let recs: Vec<_> = spec.generator(4).take(3).collect();
        let mut buf = Vec::new();
        write_trace_json(&mut buf, recs.iter().copied()).expect("write");
        buf.extend_from_slice(b"\n\n");
        let back = read_trace_json(&buf[..]).expect("read");
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn reports_malformed_line() {
        let err = read_trace_json(&b"{not json}\n"[..]).unwrap_err();
        match err {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(err.to_string().contains("line 1"));
        assert!(err.source().is_some());
    }

    #[test]
    fn binary_round_trip() {
        let spec = WorkloadSpec::preset(Workload::SpecJbb, &SystemConfig::isca03()).scaled(0.002);
        let recs: Vec<_> = spec.generator(12).take(4_000).collect();
        let mut buf = Vec::new();
        let n = write_trace_bin(&mut buf, recs.iter().copied()).expect("write");
        assert_eq!(n, 4_000);
        assert_eq!(buf.len(), 8 + 4_000 * 18 + 8);
        let back = read_trace_bin(&buf[..]).expect("read");
        assert_eq!(back, recs);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let spec = WorkloadSpec::preset(Workload::Oltp, &SystemConfig::isca03()).scaled(0.002);
        let recs: Vec<_> = spec.generator(3).take(1_000).collect();
        let mut json = Vec::new();
        let mut bin = Vec::new();
        write_trace_json(&mut json, recs.iter().copied()).expect("json");
        write_trace_bin(&mut bin, recs.iter().copied()).expect("bin");
        assert!(
            bin.len() * 3 < json.len(),
            "bin {} vs json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_trace_bin(&b"NOPE0000trailer!"[..]).unwrap_err();
        assert!(err.to_string().contains("DSPT"));
    }

    #[test]
    fn binary_rejects_truncation() {
        let spec = WorkloadSpec::preset(Workload::Oltp, &SystemConfig::isca03()).scaled(0.002);
        let recs: Vec<_> = spec.generator(3).take(10).collect();
        let mut buf = Vec::new();
        write_trace_bin(&mut buf, recs.iter().copied()).expect("write");
        // Chop a record out of the middle.
        buf.drain(30..48);
        let err = read_trace_bin(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn binary_empty_trace() {
        let mut buf = Vec::new();
        assert_eq!(
            write_trace_bin(&mut buf, std::iter::empty()).expect("write"),
            0
        );
        assert!(read_trace_bin(&buf[..]).expect("read").is_empty());
    }
}
