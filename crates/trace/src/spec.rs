//! Workload specifications: the knobs of the synthetic generators.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsp_types::SystemConfig;

use crate::generator::TraceGenerator;
use crate::presets;

/// The six benchmark workloads of the paper (Table 1).
///
/// * `Apache` — static web content serving (Apache 2.0.39).
/// * `BarnesHut` — SPLASH-2 N-body simulation, 64 k bodies.
/// * `Ocean` — SPLASH-2 ocean simulation, 514×514 grid.
/// * `Oltp` — DB2 running a TPC-C-like online transaction workload.
/// * `Slashcode` — dynamic web serving (Slashcode 2.0 + MySQL).
/// * `SpecJbb` — SPECjbb2000 server-side Java middleware.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Workload {
    /// Static web content serving (Apache).
    Apache,
    /// SPLASH-2 Barnes-Hut, 64k bodies.
    BarnesHut,
    /// SPLASH-2 Ocean, 514 x 514 grid.
    Ocean,
    /// Online transaction processing: DB2 with a TPC-C-like workload.
    Oltp,
    /// Dynamic web content serving: Slashcode over MySQL.
    Slashcode,
    /// SPECjbb2000 server-side Java.
    SpecJbb,
}

impl Workload {
    /// All six workloads, in the paper's (alphabetical) order.
    pub const ALL: [Workload; 6] = [
        Workload::Apache,
        Workload::BarnesHut,
        Workload::Ocean,
        Workload::Oltp,
        Workload::Slashcode,
        Workload::SpecJbb,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Apache => "Apache",
            Workload::BarnesHut => "Barnes-Hut",
            Workload::Ocean => "Ocean",
            Workload::Oltp => "OLTP",
            Workload::Slashcode => "Slashcode",
            Workload::SpecJbb => "SPECjbb",
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The sharing class of a pool of blocks.
///
/// Commercial-workload miss streams are well described as mixtures of a
/// small number of access idioms (Gupta & Weber's invalidation-pattern
/// taxonomy; the paper's §2). Each class reproduces one idiom.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SharingClass {
    /// Blocks touched by exactly one processor (stack, thread-local heap).
    /// Misses are capacity misses sourced by memory.
    Private,
    /// The long tail of the footprint: blocks touched once or twice,
    /// walked sequentially. Sourced by memory; gives the workload its
    /// large "memory touched" figure.
    ColdFootprint,
    /// Read-only shared data (code, configuration): many readers, no
    /// writers, sourced by memory.
    ReadShared,
    /// Migratory data (locks, counters, updated records): processors take
    /// turns performing a load-miss followed by a store (read-modify-
    /// write), so ownership migrates around the sharing group.
    Migratory,
    /// Producer–consumer buffers: one processor writes a macroblock, the
    /// group members then read it, and the producer role rotates.
    ProducerConsumer,
    /// Read-write shared data touched by the whole group with a given
    /// store fraction; stores invalidate accumulated sharers.
    ReadWriteShared,
}

impl fmt::Display for SharingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SharingClass::Private => "private",
            SharingClass::ColdFootprint => "cold-footprint",
            SharingClass::ReadShared => "read-shared",
            SharingClass::Migratory => "migratory",
            SharingClass::ProducerConsumer => "producer-consumer",
            SharingClass::ReadWriteShared => "read-write-shared",
        };
        f.write_str(s)
    }
}

/// One pool of blocks sharing a [`SharingClass`] and its parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// The access idiom of this pool.
    pub class: SharingClass,
    /// Relative fraction of all misses that hit this pool (the presets
    /// normalize these to sum to 1).
    pub miss_weight: f64,
    /// Pool size in macroblocks (16 blocks each at paper defaults).
    pub macroblocks: usize,
    /// Number of distinct processors in each block's sharing group.
    pub group_size: usize,
    /// Fraction of accesses that are stores (where the class does not
    /// dictate the mix structurally).
    pub write_frac: f64,
    /// Zipf exponent of temporal locality across the pool's macroblocks
    /// (0 = uniform, ~1 = hot).
    pub zipf_exponent: f64,
    /// Number of static instructions (PCs) that miss into this pool.
    pub pcs: usize,
}

/// A complete synthetic workload: a weighted mixture of class pools plus
/// whole-trace parameters.
///
/// # Example
///
/// ```
/// use dsp_trace::{Workload, WorkloadSpec};
/// use dsp_types::SystemConfig;
///
/// let spec = WorkloadSpec::preset(Workload::Oltp, &SystemConfig::isca03());
/// assert_eq!(spec.num_nodes(), 16);
/// assert!(spec.footprint_bytes() > 100 << 20);
/// let small = spec.scaled(1.0 / 64.0);
/// assert!(small.footprint_bytes() < 4 << 20);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    name: String,
    num_nodes: usize,
    blocks_per_macroblock: u64,
    misses_per_kilo_instr: f64,
    classes: Vec<ClassSpec>,
}

impl WorkloadSpec {
    /// Builds a spec from parts.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, any weight is negative or all are
    /// zero, any pool is empty, or a group size is zero or exceeds the
    /// node count.
    pub fn new(
        name: impl Into<String>,
        num_nodes: usize,
        blocks_per_macroblock: u64,
        misses_per_kilo_instr: f64,
        classes: Vec<ClassSpec>,
    ) -> Self {
        assert!(
            !classes.is_empty(),
            "a workload needs at least one class pool"
        );
        assert!(
            blocks_per_macroblock >= 1,
            "macroblocks must hold at least one block"
        );
        let mut total_weight = 0.0;
        for c in &classes {
            assert!(c.miss_weight >= 0.0, "negative miss weight");
            assert!(c.macroblocks > 0, "empty class pool");
            assert!(
                c.group_size >= 1 && c.group_size <= num_nodes,
                "group size {} out of range for {num_nodes} nodes",
                c.group_size
            );
            assert!(
                (0.0..=1.0).contains(&c.write_frac),
                "write fraction out of [0,1]"
            );
            assert!(c.pcs >= 1, "each class needs at least one PC");
            total_weight += c.miss_weight;
        }
        assert!(total_weight > 0.0, "all miss weights are zero");
        WorkloadSpec {
            name: name.into(),
            num_nodes,
            blocks_per_macroblock,
            misses_per_kilo_instr,
            classes,
        }
    }

    /// The calibrated preset for one of the paper's six workloads.
    pub fn preset(workload: Workload, config: &SystemConfig) -> Self {
        presets::preset(workload, config)
    }

    /// Workload name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors issuing misses.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Cache blocks per macroblock (16 at paper defaults).
    pub fn blocks_per_macroblock(&self) -> u64 {
        self.blocks_per_macroblock
    }

    /// L2 misses per 1000 instructions (Table 2), used by the timing
    /// simulator to space misses with computation.
    pub fn misses_per_kilo_instr(&self) -> f64 {
        self.misses_per_kilo_instr
    }

    /// Mean number of instructions between consecutive misses of one
    /// processor.
    pub fn mean_gap_instructions(&self) -> f64 {
        1000.0 / self.misses_per_kilo_instr
    }

    /// The class pools.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// Total pool size in macroblocks.
    pub fn total_macroblocks(&self) -> usize {
        self.classes.iter().map(|c| c.macroblocks).sum()
    }

    /// Total footprint in bytes (64-byte blocks).
    pub fn footprint_bytes(&self) -> u64 {
        self.total_macroblocks() as u64 * self.blocks_per_macroblock * 64
    }

    /// Returns a copy with every pool (and PC count) scaled by `factor`,
    /// for fast test and CI runs. Pool sizes are floored at 2
    /// macroblocks and 1 PC. Weights, group sizes, and mix are
    /// unchanged, so sharing *behavior* is preserved; only footprint
    /// shrinks.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let classes = self
            .classes
            .iter()
            .map(|c| ClassSpec {
                macroblocks: ((c.macroblocks as f64 * factor).round() as usize).max(2),
                pcs: ((c.pcs as f64 * factor).round() as usize).max(1),
                ..c.clone()
            })
            .collect();
        WorkloadSpec {
            name: self.name.clone(),
            num_nodes: self.num_nodes,
            blocks_per_macroblock: self.blocks_per_macroblock,
            misses_per_kilo_instr: self.misses_per_kilo_instr,
            classes,
        }
    }

    /// Creates a deterministic, infinite miss-stream generator.
    pub fn generator(&self, seed: u64) -> TraceGenerator {
        TraceGenerator::new(self.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_class() -> Vec<ClassSpec> {
        vec![ClassSpec {
            class: SharingClass::Migratory,
            miss_weight: 1.0,
            macroblocks: 16,
            group_size: 4,
            write_frac: 0.5,
            zipf_exponent: 0.8,
            pcs: 10,
        }]
    }

    #[test]
    fn spec_accessors() {
        let spec = WorkloadSpec::new("test", 16, 16, 5.0, one_class());
        assert_eq!(spec.name(), "test");
        assert_eq!(spec.num_nodes(), 16);
        assert_eq!(spec.total_macroblocks(), 16);
        assert_eq!(spec.footprint_bytes(), 16 * 16 * 64);
        assert!((spec.mean_gap_instructions() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_shrinks_pools_not_weights() {
        let spec = WorkloadSpec::new("test", 16, 16, 5.0, one_class());
        let small = spec.scaled(0.25);
        assert_eq!(small.total_macroblocks(), 4);
        assert_eq!(small.classes()[0].miss_weight, 1.0);
        assert_eq!(small.classes()[0].group_size, 4);
    }

    #[test]
    fn scaling_floors_at_two_macroblocks() {
        let spec = WorkloadSpec::new("test", 16, 16, 5.0, one_class());
        let tiny = spec.scaled(1e-6);
        assert_eq!(tiny.total_macroblocks(), 2);
        assert_eq!(tiny.classes()[0].pcs, 1);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn rejects_empty_classes() {
        let _ = WorkloadSpec::new("bad", 16, 16, 5.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn rejects_oversized_group() {
        let mut classes = one_class();
        classes[0].group_size = 17;
        let _ = WorkloadSpec::new("bad", 16, 16, 5.0, classes);
    }

    #[test]
    fn all_workloads_have_presets() {
        let config = SystemConfig::isca03();
        for w in Workload::ALL {
            let spec = WorkloadSpec::preset(w, &config);
            assert_eq!(spec.num_nodes(), 16, "{w}");
            assert!(!spec.classes().is_empty(), "{w}");
        }
    }

    #[test]
    fn workload_names() {
        assert_eq!(Workload::Oltp.to_string(), "OLTP");
        assert_eq!(Workload::BarnesHut.name(), "Barnes-Hut");
        assert_eq!(Workload::ALL.len(), 6);
    }
}
