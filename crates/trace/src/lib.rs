//! Synthetic commercial-workload coherence traces.
//!
//! The ISCA 2003 destination-set prediction paper drives its predictors
//! with Simics-captured L2 miss traces of six workloads (Apache, OLTP,
//! SPECjbb, Slashcode, Barnes-Hut, Ocean). Each trace record contains the
//! *data address*, *program counter*, *requester*, and *request type* of
//! one second-level cache miss.
//!
//! Those traces are not redistributable (and depend on proprietary
//! commercial software), so this crate builds the closest synthetic
//! equivalent: parameterized, seeded generators whose miss streams are
//! calibrated against everything the paper publishes about the real
//! streams — Table 2 (footprints, miss rates, % directory indirections)
//! and Figures 2–4 (instantaneous sharing, degree of sharing, temporal /
//! spatial / PC locality). The generators compose six sharing classes
//! (private, cold-footprint, read-only shared, migratory,
//! producer–consumer, and read-write shared) with Zipf temporal locality
//! and macroblock-correlated sharer groups.
//!
//! # Example
//!
//! ```
//! use dsp_trace::{Workload, WorkloadSpec};
//! use dsp_types::SystemConfig;
//!
//! let config = SystemConfig::isca03();
//! let spec = WorkloadSpec::preset(Workload::Apache, &config).scaled(1.0 / 64.0);
//! let misses: Vec<_> = spec.generator(7).take(1000).collect();
//! assert_eq!(misses.len(), 1000);
//! assert!(misses.iter().all(|m| m.requester.index() < 16));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generator;
mod holders;
mod io;
mod presets;
mod record;
mod spec;
mod zipf;

pub use generator::TraceGenerator;
pub use holders::HolderMap;
pub use io::{read_trace_bin, read_trace_json, write_trace_bin, write_trace_json, TraceIoError};
pub use record::TraceRecord;
pub use spec::{ClassSpec, SharingClass, Workload, WorkloadSpec};
pub use zipf::ZipfSampler;
