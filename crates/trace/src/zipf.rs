//! Zipf-distributed sampling for temporal locality.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to
/// `1 / (rank + 1)^exponent`.
///
/// A Zipf distribution over block (or macroblock) ranks reproduces the
/// temporal locality the paper reports in Figure 4: a small number of hot
/// blocks accounts for most cache-to-cache misses. The sampler
/// precomputes the cumulative distribution and samples with a binary
/// search, so sampling is O(log n).
///
/// # Example
///
/// ```
/// use dsp_trace::ZipfSampler;
/// use rand::SeedableRng;
///
/// let zipf = ZipfSampler::new(1000, 1.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    /// First-level index over the CDF: `coarse[b]` is the lower bound
    /// (first rank whose cumulative probability reaches `b / 256`), so
    /// a sample only binary-searches the narrow range between two
    /// adjacent `coarse` entries — a handful of adjacent cache lines
    /// instead of O(log n) scattered probes over a multi-thousand-entry
    /// CDF. Trace generation samples twice per record, which makes this
    /// the generator's hottest data structure.
    coarse: Vec<u32>,
}

/// Buckets in the first-level index (`coarse` has `BUCKETS + 1`
/// entries).
const BUCKETS: usize = 256;

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with the given exponent.
    ///
    /// An exponent of `0.0` degenerates to a uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the exponent is negative or not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        let mut coarse = Vec::with_capacity(BUCKETS + 1);
        let mut i = 0usize;
        for b in 0..=BUCKETS {
            let threshold = b as f64 / BUCKETS as f64;
            while i < n && cdf[i] < threshold {
                i += 1;
            }
            coarse.push(i.min(n - 1) as u32);
        }
        ZipfSampler { cdf, coarse }
    }

    /// Number of ranks.
    #[inline]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has exactly one rank (never empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..len()`: the first rank whose cumulative
    /// probability reaches the uniform draw, found by a bucket lookup
    /// plus a binary search of the bucket's narrow CDF range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let b = ((u * BUCKETS as f64) as usize).min(BUCKETS - 1);
        let lo = self.coarse[b] as usize;
        // The lower bound for `u` lies in `lo..=hi` by construction of
        // the index (`u < (b + 1) / BUCKETS <= cdf[coarse[b + 1]]`).
        let hi = (self.coarse[b + 1] as usize + 1).min(self.cdf.len());
        let pos = self.cdf[lo..hi].partition_point(|&p| p < u);
        (lo + pos).min(self.cdf.len() - 1)
    }

    /// Probability mass of the given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let zipf = ZipfSampler::new(50, 1.2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let zipf = ZipfSampler::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99]);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let zipf = ZipfSampler::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            // Each bucket should get about 10k; allow generous slack.
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of band");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let zipf = ZipfSampler::new(64, 0.9);
        let total: f64 = (0..64).map(|r| zipf.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(zipf.pmf(64), 0.0);
    }

    #[test]
    fn single_rank_always_zero() {
        let zipf = ZipfSampler::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(zipf.sample(&mut rng), 0);
        assert_eq!(zipf.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
