//! Lightweight MOSI holder tracking used by the generator.
//!
//! The generator keeps its own view of which caches hold each block so
//! the miss stream it emits is *coherence-consistent*: a processor never
//! "misses" on a block it demonstrably still holds with sufficient
//! permission (unless the generator deliberately models an eviction).
//! This mirrors, in miniature, the global MOSI tracking that
//! `dsp-coherence` performs downstream, but stays private to trace
//! generation so the crate graph remains a clean DAG.

use dsp_types::{AccessKind, BlockAddr, DestSet, NodeId, OpenTable, Owner};

/// Who currently holds a block, from the generator's point of view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Holders {
    /// The owner (cache in M/O, or memory).
    pub owner: Owner,
    /// Caches holding Shared copies (excluding the owner).
    pub sharers: DestSet,
}

impl Holders {
    /// Whether `node` holds any copy.
    pub fn holds(&self, node: NodeId) -> bool {
        self.owner.node() == Some(node) || self.sharers.contains(node)
    }

    /// Whether `node` can satisfy a load without a coherence request.
    pub fn can_read(&self, node: NodeId) -> bool {
        self.holds(node)
    }

    /// Whether `node` can satisfy a store without a coherence request
    /// (sole modified owner).
    pub fn can_write(&self, node: NodeId) -> bool {
        self.owner.node() == Some(node) && self.sharers.is_empty()
    }
}

/// Map from block to current holders, with MOSI update rules.
///
/// Backed by [`dsp_types::OpenTable`] — the generator applies one
/// holder update per emitted record, so this map is the trace
/// generator's hot path exactly as the block-state table is the
/// tracker's.
#[derive(Clone, Debug, Default)]
pub struct HolderMap {
    map: OpenTable<Holders>,
}

impl HolderMap {
    /// Creates an empty map (all blocks owned by memory).
    pub fn new() -> Self {
        HolderMap::default()
    }

    /// Current holders of `block` (memory-owned if never touched).
    pub fn get(&self, block: BlockAddr) -> Holders {
        self.map.get(block.number()).copied().unwrap_or_default()
    }

    /// Number of blocks with non-default state tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no block has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Applies a miss by `node` with `kind` to `block`, returning the
    /// holders *before* the update.
    ///
    /// Rules (MOSI, with implicit eviction of the requester's stale
    /// copy, since a miss implies the requester no longer holds it):
    ///
    /// * Load: requester joins the sharers; an M owner demotes to O.
    /// * Store: requester becomes the M owner; all other copies die.
    pub fn apply(&mut self, node: NodeId, kind: AccessKind, block: BlockAddr) -> Holders {
        let entry = self.map.get_or_insert_default(block.number()).0;
        let before = *entry;
        // The requester missing implies any copy it held has been evicted.
        if entry.owner.node() == Some(node) {
            // Owner eviction wrote the dirty data back: memory owns again,
            // but other sharers keep their copies.
            entry.owner = Owner::Memory;
        }
        entry.sharers.remove(node);
        match kind {
            AccessKind::Load => {
                entry.sharers.insert(node);
            }
            AccessKind::Store => {
                entry.owner = Owner::Node(node);
                entry.sharers = DestSet::empty();
            }
        }
        before
    }

    /// Models an eviction of `node`'s copy of `block` (silent drop for a
    /// sharer, writeback for an owner).
    pub fn evict(&mut self, node: NodeId, block: BlockAddr) {
        if let Some(entry) = self.map.get_mut(block.number()) {
            if entry.owner.node() == Some(node) {
                entry.owner = Owner::Memory;
            }
            entry.sharers.remove(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn untouched_block_is_memory_owned() {
        let map = HolderMap::new();
        let h = map.get(b(9));
        assert_eq!(h.owner, Owner::Memory);
        assert!(h.sharers.is_empty());
        assert!(map.is_empty());
    }

    #[test]
    fn load_adds_sharer() {
        let mut map = HolderMap::new();
        map.apply(n(1), AccessKind::Load, b(0));
        let h = map.get(b(0));
        assert!(h.sharers.contains(n(1)));
        assert_eq!(h.owner, Owner::Memory);
    }

    #[test]
    fn store_takes_ownership_and_invalidates() {
        let mut map = HolderMap::new();
        map.apply(n(1), AccessKind::Load, b(0));
        map.apply(n(2), AccessKind::Load, b(0));
        let before = map.apply(n(3), AccessKind::Store, b(0));
        assert_eq!(before.sharers.len(), 2);
        let h = map.get(b(0));
        assert_eq!(h.owner, Owner::Node(n(3)));
        assert!(h.sharers.is_empty());
    }

    #[test]
    fn load_after_store_leaves_owner_dirty() {
        let mut map = HolderMap::new();
        map.apply(n(1), AccessKind::Store, b(0));
        map.apply(n(2), AccessKind::Load, b(0));
        let h = map.get(b(0));
        // MOSI: writer demotes M -> O but still owns (supplies data).
        assert_eq!(h.owner, Owner::Node(n(1)));
        assert!(h.sharers.contains(n(2)));
    }

    #[test]
    fn re_miss_by_owner_implies_writeback() {
        let mut map = HolderMap::new();
        map.apply(n(1), AccessKind::Store, b(0));
        // P1 misses again on the same block: its copy must have been
        // evicted (written back), so the pre-state owner is memory.
        let before = map.apply(n(1), AccessKind::Load, b(0));
        assert_eq!(before.owner, Owner::Node(n(1)));
        let h = map.get(b(0));
        assert_eq!(h.owner, Owner::Memory);
        assert!(h.sharers.contains(n(1)));
    }

    #[test]
    fn explicit_evict() {
        let mut map = HolderMap::new();
        map.apply(n(1), AccessKind::Store, b(0));
        map.evict(n(1), b(0));
        let h = map.get(b(0));
        assert_eq!(h.owner, Owner::Memory);
        assert!(!h.holds(n(1)));
    }

    #[test]
    fn permissions() {
        let mut map = HolderMap::new();
        map.apply(n(1), AccessKind::Store, b(0));
        let h = map.get(b(0));
        assert!(h.can_read(n(1)));
        assert!(h.can_write(n(1)));
        assert!(!h.can_read(n(2)));
        map.apply(n(2), AccessKind::Load, b(0));
        let h = map.get(b(0));
        assert!(h.can_read(n(2)));
        assert!(
            !h.can_write(n(1)),
            "owner with sharers cannot write silently"
        );
    }
}
