//! The trace record schema.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsp_types::{AccessKind, Address, BlockAddr, NodeId, Pc, ReqType};

/// One L2-cache-miss coherence event, exactly the schema of the paper's
/// Simics traces: "trace records contain the data address, program
/// counter (PC) address, requester, and request type" (§2.1).
///
/// # Example
///
/// ```
/// use dsp_trace::TraceRecord;
/// use dsp_types::{AccessKind, Address, NodeId, Pc, ReqType};
///
/// let rec = TraceRecord::new(NodeId::new(3), AccessKind::Store, Address::new(0x4040), Pc::new(0x1000));
/// assert_eq!(rec.request(), ReqType::GetExclusive);
/// assert_eq!(rec.block().number(), 0x101);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The node whose L2 missed.
    pub requester: NodeId,
    /// Load or store.
    pub kind: AccessKind,
    /// Data (byte) address of the access.
    pub addr: Address,
    /// Program counter of the missing instruction.
    pub pc: Pc,
}

impl TraceRecord {
    /// Creates a record.
    pub fn new(requester: NodeId, kind: AccessKind, addr: Address, pc: Pc) -> Self {
        TraceRecord {
            requester,
            kind,
            addr,
            pc,
        }
    }

    /// The coherence request type this miss issues (MOSI): loads request
    /// Shared, stores request Exclusive.
    #[inline]
    pub fn request(&self) -> ReqType {
        self.kind.request()
    }

    /// The 64-byte block containing the data address.
    #[inline]
    pub fn block(&self) -> BlockAddr {
        self.addr.block()
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.requester,
            self.request(),
            self.addr,
            self.pc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_type_follows_kind() {
        let load = TraceRecord::new(
            NodeId::new(0),
            AccessKind::Load,
            Address::new(64),
            Pc::new(4),
        );
        let store = TraceRecord::new(
            NodeId::new(0),
            AccessKind::Store,
            Address::new(64),
            Pc::new(4),
        );
        assert_eq!(load.request(), ReqType::GetShared);
        assert_eq!(store.request(), ReqType::GetExclusive);
    }

    #[test]
    fn block_view() {
        let rec = TraceRecord::new(
            NodeId::new(1),
            AccessKind::Load,
            Address::new(0x1040),
            Pc::new(0),
        );
        assert_eq!(rec.block().number(), 0x41);
    }

    #[test]
    fn display_contains_fields() {
        let rec = TraceRecord::new(
            NodeId::new(2),
            AccessKind::Store,
            Address::new(0x80),
            Pc::new(0x10),
        );
        let s = rec.to_string();
        assert!(s.contains("P2") && s.contains("GETX") && s.contains("0x80"));
    }

    #[test]
    fn serde_round_trip() {
        let rec = TraceRecord::new(
            NodeId::new(5),
            AccessKind::Load,
            Address::new(0xabc0),
            Pc::new(0x42),
        );
        let json = serde_json::to_string(&rec).expect("serialize");
        let back: TraceRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(rec, back);
    }
}
