//! Property-based tests of the synthetic workload generators.

use std::collections::HashMap;

use proptest::prelude::*;

use dsp_trace::{ClassSpec, SharingClass, Workload, WorkloadSpec};
use dsp_types::{AccessKind, NodeId, SystemConfig};

fn class_strategy() -> impl Strategy<Value = ClassSpec> {
    (
        prop_oneof![
            Just(SharingClass::Private),
            Just(SharingClass::ColdFootprint),
            Just(SharingClass::ReadShared),
            Just(SharingClass::Migratory),
            Just(SharingClass::ProducerConsumer),
            Just(SharingClass::ReadWriteShared),
        ],
        0.1f64..10.0, // miss weight
        2usize..40,   // macroblocks
        1usize..=16,  // group size
        0.0f64..=0.9, // write fraction
        0.0f64..=1.2, // zipf exponent
        1usize..100,  // pcs
    )
        .prop_map(
            |(class, miss_weight, macroblocks, group_size, write_frac, zipf, pcs)| ClassSpec {
                class,
                miss_weight,
                macroblocks,
                group_size,
                write_frac,
                zipf_exponent: zipf,
                pcs,
            },
        )
}

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    proptest::collection::vec(class_strategy(), 1..5)
        .prop_map(|classes| WorkloadSpec::new("prop", 16, 16, 3.0, classes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated record stays inside the spec's pools, nodes, and
    /// PC regions.
    #[test]
    fn records_stay_in_bounds(spec in spec_strategy(), seed in 0u64..1000) {
        let n_classes = spec.classes().len() as u64;
        for rec in spec.generator(seed).take(2_000) {
            prop_assert!(rec.requester.index() < 16);
            let pool = rec.block().number() >> 34;
            prop_assert!(pool >= 1 && pool <= n_classes, "block outside pools");
            prop_assert!(rec.pc.raw() >= 0x0040_0000);
        }
    }

    /// Generators are pure functions of (spec, seed).
    #[test]
    fn generation_is_deterministic(spec in spec_strategy(), seed in 0u64..1000) {
        let a: Vec<_> = spec.generator(seed).take(500).collect();
        let b: Vec<_> = spec.generator(seed).take(500).collect();
        prop_assert_eq!(a, b);
    }

    /// Sharing never exceeds the configured group size at macroblock
    /// granularity (private/cold classes are the degenerate group of 1).
    #[test]
    fn sharing_respects_group_bounds(spec in spec_strategy(), seed in 0u64..100) {
        let mut seen: HashMap<(u64, u64), std::collections::HashSet<usize>> = HashMap::new();
        for rec in spec.generator(seed).take(3_000) {
            let pool = rec.block().number() >> 34;
            let mb = rec.block().number() >> 4;
            seen.entry((pool, mb)).or_default().insert(rec.requester.index());
        }
        for ((pool, _), nodes) in seen {
            let class = &spec.classes()[(pool - 1) as usize];
            prop_assert!(
                nodes.len() <= class.group_size,
                "{} macroblock touched by {} nodes (group {})",
                class.class,
                nodes.len(),
                class.group_size
            );
        }
    }

    /// The generator's own holder map matches an independent replay of
    /// its emissions.
    #[test]
    fn holder_map_is_consistent_with_stream(seed in 0u64..50) {
        let config = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 512.0);
        let mut gen = spec.generator(seed);
        let mut replay = dsp_trace::HolderMap::new();
        for _ in 0..2_000 {
            let rec = gen.next().expect("infinite");
            replay.apply(rec.requester, rec.kind, rec.block());
        }
        // Spot-check the blocks the replay knows about.
        for rec in spec.generator(seed).take(2_000) {
            let a = gen.holders().get(rec.block());
            let b = replay.get(rec.block());
            prop_assert_eq!(a, b, "divergent holders for {}", rec.block());
        }
    }

    /// Migratory read-modify-write pairing: within one macroblock unit,
    /// a store always comes from the node that performed the unit's
    /// most recent load.
    #[test]
    fn migratory_store_follows_own_load(seed in 0u64..100, group in 2usize..=16) {
        let spec = WorkloadSpec::new(
            "mig",
            16,
            16,
            3.0,
            vec![ClassSpec {
                class: SharingClass::Migratory,
                miss_weight: 1.0,
                macroblocks: 6,
                group_size: group,
                write_frac: 0.5,
                zipf_exponent: 0.8,
                pcs: 8,
            }],
        );
        let mut last_load: HashMap<u64, NodeId> = HashMap::new();
        for rec in spec.generator(seed).take(3_000) {
            let unit = rec.block().number() >> 4;
            match rec.kind {
                AccessKind::Load => {
                    last_load.insert(unit, rec.requester);
                }
                AccessKind::Store => {
                    prop_assert_eq!(
                        last_load.get(&unit).copied(),
                        Some(rec.requester),
                        "store by a node that did not load unit {}",
                        unit
                    );
                }
            }
        }
    }

    /// Scaling preserves weights and group structure exactly.
    #[test]
    fn scaled_specs_preserve_mix(spec in spec_strategy(), factor in 0.05f64..4.0) {
        let scaled = spec.scaled(factor);
        prop_assert_eq!(spec.classes().len(), scaled.classes().len());
        for (a, b) in spec.classes().iter().zip(scaled.classes()) {
            prop_assert_eq!(a.miss_weight, b.miss_weight);
            prop_assert_eq!(a.group_size, b.group_size);
            prop_assert_eq!(a.class, b.class);
        }
    }
}
