//! Workload characterization: paper Table 2 and Figures 2–4.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dsp_coherence::CoherenceTracker;
use dsp_trace::{TraceRecord, WorkloadSpec};
use dsp_types::{DestSet, ReqType, SystemConfig};

/// Histogram of how many *other* processors must observe each miss
/// (paper Figure 2), split by read/write. Bins: 0, 1, 2, 3+.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingHistogram {
    /// Read (GETS) misses per bin.
    pub reads: [u64; 4],
    /// Write (GETX) misses per bin.
    pub writes: [u64; 4],
}

impl SharingHistogram {
    fn bin(observers: usize) -> usize {
        observers.min(3)
    }

    /// Total misses recorded.
    pub fn total(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Percentage of all misses in `bin` for reads / writes.
    pub fn percent(&self, bin: usize) -> (f64, f64) {
        let total = self.total().max(1) as f64;
        (
            100.0 * self.reads[bin] as f64 / total,
            100.0 * self.writes[bin] as f64 / total,
        )
    }
}

/// One entity's (block / macroblock / PC) cache-to-cache miss count,
/// used to build the locality CDFs of Figure 4.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LocalityCdf {
    /// Cache-to-cache miss counts per entity, descending.
    counts: Vec<u64>,
    total: u64,
}

impl LocalityCdf {
    fn from_counts(mut counts: Vec<u64>) -> Self {
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = counts.iter().sum();
        LocalityCdf { counts, total }
    }

    /// Number of distinct entities with at least one c2c miss.
    pub fn entities(&self) -> usize {
        self.counts.len()
    }

    /// Cumulative percentage of cache-to-cache misses covered by the
    /// hottest `k` entities (the y-value of Figure 4 at x = `k`).
    pub fn percent_covered_by(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.counts.iter().take(k).sum();
        100.0 * covered as f64 / self.total as f64
    }
}

/// Everything the paper reports about a workload's sharing behavior
/// (Table 2 and Figures 2–4), measured over one generated trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// Workload name.
    pub workload: String,
    /// Misses measured (post-warmup).
    pub misses: u64,
    /// Distinct 64 B blocks touched (Table 2 column 2).
    pub blocks_touched: u64,
    /// Distinct 1024 B macroblocks touched (column 3).
    pub macroblocks_touched: u64,
    /// Distinct miss PCs (column 4).
    pub static_pcs: u64,
    /// Misses per 1000 instructions (column 6; from the workload spec).
    pub misses_per_kilo_instr: f64,
    /// Misses that would indirect in a directory protocol (column 7).
    pub directory_indirections: u64,
    /// Misses whose data came from another cache.
    pub cache_to_cache: u64,
    /// Figure 2.
    pub sharing: SharingHistogram,
    /// Figure 3(a): blocks touched by exactly `d` processors
    /// (`degree_blocks[d]`, d in 1..=n).
    pub degree_blocks: Vec<u64>,
    /// Figure 3(b): misses to blocks touched by exactly `d` processors.
    pub degree_misses: Vec<u64>,
    /// Figure 4(a): c2c-miss locality over 64 B blocks.
    pub block_locality: LocalityCdf,
    /// Figure 4(b): over 1024 B macroblocks.
    pub macroblock_locality: LocalityCdf,
    /// Figure 4(c): over static instructions.
    pub pc_locality: LocalityCdf,
}

impl CharacterizationReport {
    /// Table 2 column 7 as a percentage.
    pub fn indirection_pct(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            100.0 * self.directory_indirections as f64 / self.misses as f64
        }
    }

    /// Footprint in bytes at 64 B granularity.
    pub fn footprint_bytes(&self) -> u64 {
        self.blocks_touched * 64
    }
}

/// Generates `warmup + misses` records of `spec` and characterizes the
/// measured window, exactly as the paper instruments its traces ("We use
/// the first one million misses in the trace to warm up the caches").
pub fn characterize(
    spec: &WorkloadSpec,
    config: &SystemConfig,
    warmup: usize,
    misses: usize,
    seed: u64,
) -> CharacterizationReport {
    characterize_trace(
        spec.generator(seed).take(warmup + misses),
        spec.name(),
        spec.misses_per_kilo_instr(),
        config,
        warmup,
    )
}

/// Characterizes an already-materialized (or otherwise streamed) miss
/// trace: the first `warmup` records warm the coherence state without
/// being measured. [`characterize`] is this function over a freshly
/// seeded generator; sweep harnesses use this entry point directly so
/// one shared trace can feed many evaluators without regeneration.
pub fn characterize_trace<I>(
    trace: I,
    workload: &str,
    misses_per_kilo_instr: f64,
    config: &SystemConfig,
    warmup: usize,
) -> CharacterizationReport
where
    I: IntoIterator<Item = TraceRecord>,
{
    let n = config.num_nodes();
    let mut tracker: CoherenceTracker = CoherenceTracker::new(config);
    let mut blocks: HashMap<u64, (DestSet, u64)> = HashMap::new(); // accessors, misses
    let mut macroblocks: HashMap<u64, u64> = HashMap::new(); // c2c per macroblock
    let mut block_c2c: HashMap<u64, u64> = HashMap::new();
    let mut pc_c2c: HashMap<u64, u64> = HashMap::new();
    let mut pcs: HashMap<u64, ()> = HashMap::new();
    let mut sharing = SharingHistogram::default();
    let mut measured = 0u64;
    let mut indirections = 0u64;
    let mut c2c = 0u64;
    for (i, rec) in trace.into_iter().enumerate() {
        let info = tracker.access(rec.requester, rec.request(), rec.block());
        if i < warmup {
            continue;
        }
        measured += 1;
        let entry = blocks.entry(rec.block().number()).or_default();
        entry.0.insert(rec.requester);
        entry.1 += 1;
        pcs.entry(rec.pc.raw()).or_insert(());
        let observers = info.required_observers().len();
        match rec.request() {
            ReqType::GetShared => sharing.reads[SharingHistogram::bin(observers)] += 1,
            ReqType::GetExclusive => sharing.writes[SharingHistogram::bin(observers)] += 1,
        }
        if info.is_directory_indirection() {
            indirections += 1;
        }
        if info.is_cache_to_cache() {
            c2c += 1;
            *block_c2c.entry(rec.block().number()).or_default() += 1;
            *macroblocks
                .entry(rec.block().macroblock(config.macroblock_bytes()).number())
                .or_default() += 1;
            *pc_c2c.entry(rec.pc.raw()).or_default() += 1;
        }
    }
    let mut degree_blocks = vec![0u64; n + 1];
    let mut degree_misses = vec![0u64; n + 1];
    let mut touched_macroblocks: HashMap<u64, ()> = HashMap::new();
    for (block, (accessors, miss_count)) in &blocks {
        let d = accessors.len().min(n);
        degree_blocks[d] += 1;
        degree_misses[d] += miss_count;
        let mb = dsp_types::BlockAddr::new(*block)
            .macroblock(config.macroblock_bytes())
            .number();
        touched_macroblocks.entry(mb).or_insert(());
    }
    CharacterizationReport {
        workload: workload.to_string(),
        misses: measured,
        blocks_touched: blocks.len() as u64,
        macroblocks_touched: touched_macroblocks.len() as u64,
        static_pcs: pcs.len() as u64,
        misses_per_kilo_instr,
        directory_indirections: indirections,
        cache_to_cache: c2c,
        sharing,
        degree_blocks,
        degree_misses,
        block_locality: LocalityCdf::from_counts(block_c2c.into_values().collect()),
        macroblock_locality: LocalityCdf::from_counts(macroblocks.into_values().collect()),
        pc_locality: LocalityCdf::from_counts(pc_c2c.into_values().collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_trace::Workload;

    fn report(w: Workload) -> CharacterizationReport {
        let config = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(w, &config).scaled(1.0 / 64.0);
        characterize(&spec, &config, 5_000, 30_000, 42)
    }

    #[test]
    fn apache_indirections_near_table2() {
        let r = report(Workload::Apache);
        let pct = r.indirection_pct();
        assert!(
            (80.0..96.0).contains(&pct),
            "Apache indirections {pct}% vs paper 89%"
        );
    }

    #[test]
    fn slashcode_indirections_near_table2() {
        let r = report(Workload::Slashcode);
        let pct = r.indirection_pct();
        assert!(
            (27.0..45.0).contains(&pct),
            "Slashcode indirections {pct}% vs paper 35%"
        );
    }

    #[test]
    fn few_misses_need_many_observers() {
        // §2.4: "only about 10% of all requests need to be sent to more
        // than one other processor".
        let r = report(Workload::Oltp);
        let multi =
            r.sharing.reads[2] + r.sharing.reads[3] + r.sharing.writes[2] + r.sharing.writes[3];
        let pct = 100.0 * multi as f64 / r.misses as f64;
        assert!(pct < 25.0, "misses needing >1 observer: {pct}%");
    }

    #[test]
    fn most_blocks_private_most_misses_shared() {
        // Figure 3: degree-1 dominates per-block; high degrees dominate
        // per-miss for commercial workloads.
        let r = report(Workload::Oltp);
        let total_blocks: u64 = r.degree_blocks.iter().sum();
        assert!(
            r.degree_blocks[1] as f64 > 0.5 * total_blocks as f64,
            "most blocks touched by one processor"
        );
        let low: u64 = r.degree_misses[..=4].iter().sum();
        let high: u64 = r.degree_misses[5..].iter().sum();
        assert!(high > low, "most OLTP misses go to widely shared blocks");
    }

    #[test]
    fn ocean_misses_concentrate_on_low_degree() {
        let r = report(Workload::Ocean);
        let low: u64 = r.degree_misses[..=4].iter().sum();
        let high: u64 = r.degree_misses[5..].iter().sum();
        assert!(
            low > high,
            "Ocean misses concentrate on degree <= 4 (Fig 3b)"
        );
    }

    #[test]
    fn locality_cdfs_are_monotone_and_bounded() {
        let r = report(Workload::SpecJbb);
        let mut last = 0.0;
        for k in [10, 100, 1000, 10_000] {
            let v = r.block_locality.percent_covered_by(k);
            assert!(v >= last && v <= 100.0);
            last = v;
        }
        // Hot blocks dominate: top-1000 blocks should carry most c2c
        // misses (Fig. 4a shows ~80% for SPECjbb at full scale).
        assert!(
            r.block_locality.percent_covered_by(1000) > 50.0,
            "{}",
            r.block_locality.percent_covered_by(1000)
        );
    }

    #[test]
    fn macroblocks_localize_at_least_as_well_as_blocks() {
        let r = report(Workload::Oltp);
        let k = 500;
        assert!(
            r.macroblock_locality.percent_covered_by(k)
                >= r.block_locality.percent_covered_by(k) - 1e-9,
            "aggregating into macroblocks concentrates the distribution"
        );
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let r = report(Workload::Apache);
        let mut total = 0.0;
        for bin in 0..4 {
            let (read, write) = r.sharing.percent(bin);
            total += read + write;
        }
        assert!((total - 100.0).abs() < 0.01, "{total}");
    }

    #[test]
    fn footprint_grows_with_trace_length() {
        let config = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(Workload::Apache, &config).scaled(1.0 / 64.0);
        let short = characterize(&spec, &config, 0, 5_000, 1);
        let long = characterize(&spec, &config, 0, 40_000, 1);
        assert!(long.blocks_touched > short.blocks_touched);
        assert!(long.macroblocks_touched >= short.macroblocks_touched);
        assert_eq!(short.footprint_bytes(), short.blocks_touched * 64);
    }

    #[test]
    fn empty_cdf_is_zero() {
        let cdf = LocalityCdf::from_counts(vec![]);
        assert_eq!(cdf.percent_covered_by(100), 0.0);
        assert_eq!(cdf.entities(), 0);
    }
}
