//! Trace-driven latency/bandwidth tradeoff evaluation (Figures 5 and 6).
//!
//! Replays a miss trace against per-node destination-set predictors and
//! the multicast snooping message-accounting rules, producing one
//! `(request messages per miss, % indirections)` point per predictor
//! configuration — the two axes of the paper's Figures 5 and 6.
//!
//! Training fan-out is faithful to the hardware: a node's predictor
//! observes an external request **only if that node was in the
//! request's delivered destination set** (initial multicast or reissue),
//! and the requester trains from the data response's sender identity.

use serde::{Deserialize, Serialize};

use dsp_coherence::{multicast, CoherenceTracker};
use dsp_core::{DestSetPredictor, PredictQuery, PredictorConfig, TrainEvent};
use dsp_trace::TraceRecord;
use dsp_types::SystemConfig;

/// One point in the latency/bandwidth plane.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Configuration label (e.g. `"Group, 1024B macroblock, 8192 entries"`).
    pub label: String,
    /// Measured misses.
    pub misses: u64,
    /// Endpoint deliveries of request-class messages.
    pub request_messages: u64,
    /// Misses that indirected (3-hop for the directory baseline;
    /// reissued for multicast).
    pub indirections: u64,
    /// Misses whose first destination set was insufficient.
    pub insufficient_first: u64,
    /// Cache-to-cache misses in the window (workload property).
    pub cache_to_cache: u64,
    /// Total predictor storage across all nodes, in bits.
    pub predictor_storage_bits: u64,
}

impl TradeoffPoint {
    /// The x-axis of Figures 5/6.
    pub fn request_messages_per_miss(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.request_messages as f64 / self.misses as f64
        }
    }

    /// The y-axis of Figures 5/6.
    pub fn indirection_pct(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            100.0 * self.indirections as f64 / self.misses as f64
        }
    }
}

/// Trace-driven evaluator: replays misses through predictors and the
/// protocol accounting.
///
/// # Example
///
/// ```
/// use dsp_analysis::TradeoffEvaluator;
/// use dsp_core::PredictorConfig;
/// use dsp_trace::{Workload, WorkloadSpec};
/// use dsp_types::SystemConfig;
///
/// let config = SystemConfig::isca03();
/// let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 256.0);
/// let trace: Vec<_> = spec.generator(1).take(10_000).collect();
/// let eval = TradeoffEvaluator::new(&config).warmup(2_000);
/// let point = eval.run(trace.iter().copied(), &PredictorConfig::owner());
/// assert!(point.request_messages_per_miss() > 1.0);
/// assert!(point.indirection_pct() <= 100.0);
/// ```
#[derive(Clone, Debug)]
pub struct TradeoffEvaluator {
    config: SystemConfig,
    warmup: usize,
}

impl TradeoffEvaluator {
    /// Creates an evaluator with no warmup.
    pub fn new(config: &SystemConfig) -> Self {
        TradeoffEvaluator {
            config: *config,
            warmup: 0,
        }
    }

    /// Sets how many leading misses train without being measured (the
    /// paper warms predictors with its first million misses).
    #[must_use]
    pub fn warmup(mut self, misses: usize) -> Self {
        self.warmup = misses;
        self
    }

    /// Evaluates one predictor configuration over `trace`.
    pub fn run<I>(&self, trace: I, predictor: &PredictorConfig) -> TradeoffPoint
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        let n = self.config.num_nodes();
        let mut predictors: Vec<Box<dyn DestSetPredictor>> =
            (0..n).map(|_| predictor.build(&self.config)).collect();
        let mut tracker: CoherenceTracker = CoherenceTracker::new(&self.config);
        let mut point = TradeoffPoint {
            label: predictor.label(),
            misses: 0,
            request_messages: 0,
            indirections: 0,
            insufficient_first: 0,
            cache_to_cache: 0,
            predictor_storage_bits: 0,
        };
        for (i, rec) in trace.into_iter().enumerate() {
            let info = tracker.classify(rec.requester, rec.request(), rec.block());
            let query = PredictQuery {
                block: rec.block(),
                pc: rec.pc,
                requester: rec.requester,
                req: rec.request(),
                minimal: info.minimal_set(),
            };
            let predicted = predictors[rec.requester.index()].predict(&query);
            let outcome = multicast::evaluate(&info, predicted);
            let measured = i >= self.warmup;
            if measured {
                point.misses += 1;
                point.request_messages += outcome.request_messages;
                point.indirections += u64::from(outcome.indirection);
                point.insufficient_first += u64::from(!outcome.sufficient_first);
                point.cache_to_cache += u64::from(info.is_cache_to_cache());
            }
            // Deliveries: the initial multicast reaches the predicted ∪
            // minimal set; an insufficient request is reissued by the
            // home to the corrected set.
            let initial = (predicted | info.minimal_set()).without(rec.requester);
            let mut delivered = initial;
            if !outcome.sufficient_first {
                let corrected = info.sufficient_set();
                delivered |= corrected.without(info.home);
                // The requester observes the reissue's corrected set.
                predictors[rec.requester.index()].train(&TrainEvent::Reissue {
                    block: rec.block(),
                    corrected,
                });
            }
            let external = TrainEvent::OtherRequest {
                block: rec.block(),
                requester: rec.requester,
                req: rec.request(),
            };
            for node in delivered.without(rec.requester) {
                predictors[node.index()].train(&external);
            }
            predictors[rec.requester.index()].train(&TrainEvent::DataResponse {
                block: rec.block(),
                pc: rec.pc,
                responder: info.owner_before,
                req: rec.request(),
                minimal_sufficient: info.is_sufficient(info.minimal_set()),
            });
            let _ = tracker.access(rec.requester, rec.request(), rec.block());
        }
        point.predictor_storage_bits = predictors.iter().map(|p| p.storage_bits()).sum();
        point
    }

    /// Evaluates the broadcast snooping and directory protocol
    /// endpoints over `trace`, returning `(snooping, directory)`.
    pub fn run_baselines<I>(&self, trace: I) -> (TradeoffPoint, TradeoffPoint)
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        let n = self.config.num_nodes();
        let mut tracker: CoherenceTracker = CoherenceTracker::new(&self.config);
        let mut snoop = TradeoffPoint {
            label: "Broadcast Snooping".to_string(),
            misses: 0,
            request_messages: 0,
            indirections: 0,
            insufficient_first: 0,
            cache_to_cache: 0,
            predictor_storage_bits: 0,
        };
        let mut dir = TradeoffPoint {
            label: "Directory".to_string(),
            ..snoop.clone()
        };
        for (i, rec) in trace.into_iter().enumerate() {
            let info = tracker.access(rec.requester, rec.request(), rec.block());
            if i < self.warmup {
                continue;
            }
            let s = multicast::snooping(&info, n);
            let d = multicast::directory(&info);
            snoop.misses += 1;
            snoop.request_messages += s.request_messages;
            snoop.indirections += u64::from(s.indirection);
            snoop.cache_to_cache += u64::from(info.is_cache_to_cache());
            dir.misses += 1;
            dir.request_messages += d.request_messages;
            dir.indirections += u64::from(d.indirection);
            dir.cache_to_cache += u64::from(info.is_cache_to_cache());
        }
        (snoop, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_core::{Capacity, Indexing};
    use dsp_trace::{Workload, WorkloadSpec};

    fn trace(w: Workload, len: usize) -> Vec<TraceRecord> {
        let config = SystemConfig::isca03();
        WorkloadSpec::preset(w, &config)
            .scaled(1.0 / 128.0)
            .generator(3)
            .take(len)
            .collect()
    }

    fn eval() -> TradeoffEvaluator {
        TradeoffEvaluator::new(&SystemConfig::isca03()).warmup(5_000)
    }

    #[test]
    fn snooping_endpoint_matches_broadcast_predictor() {
        let t = trace(Workload::Oltp, 20_000);
        let (snoop, _) = eval().run_baselines(t.iter().copied());
        let broadcast = eval().run(t.iter().copied(), &PredictorConfig::always_broadcast());
        assert_eq!(snoop.request_messages, broadcast.request_messages);
        assert_eq!(broadcast.indirections, 0);
        assert_eq!(snoop.indirections, 0);
        assert!((snoop.request_messages_per_miss() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn directory_endpoint_bandwidth_is_multicast_floor() {
        // A perfect predictor would match directory bandwidth; the
        // minimal predictor pays reissues, so it uses MORE messages but
        // the directory's count stays the floor for sufficient sets.
        let t = trace(Workload::Oltp, 20_000);
        let (_, dir) = eval().run_baselines(t.iter().copied());
        let minimal = eval().run(t.iter().copied(), &PredictorConfig::always_minimal());
        assert!(minimal.request_messages >= dir.request_messages);
        // The minimal set {requester, home} already covers misses whose
        // owner is the home node's own cache, so the minimal multicast
        // indirects at most as often as the directory — and nearly so.
        assert!(minimal.indirections <= dir.indirections);
        assert!(
            minimal.indirections as f64 > 0.9 * dir.indirections as f64,
            "minimal multicast should retry on almost every directory indirection: {} vs {}",
            minimal.indirections,
            dir.indirections
        );
    }

    #[test]
    fn predictors_dominate_the_endpoints() {
        // Every real predictor sits inside the rectangle spanned by the
        // two endpoints: fewer messages than snooping, fewer
        // indirections than the directory.
        let t = trace(Workload::Oltp, 30_000);
        let (snoop, dir) = eval().run_baselines(t.iter().copied());
        for config in [
            PredictorConfig::owner().indexing(Indexing::Macroblock { bytes: 1024 }),
            PredictorConfig::broadcast_if_shared().indexing(Indexing::Macroblock { bytes: 1024 }),
            PredictorConfig::group().indexing(Indexing::Macroblock { bytes: 1024 }),
            PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
        ] {
            let p = eval().run(t.iter().copied(), &config);
            assert!(
                p.request_messages < snoop.request_messages,
                "{}: {} vs snooping {}",
                p.label,
                p.request_messages,
                snoop.request_messages
            );
            assert!(
                p.indirections < dir.indirections,
                "{}: {} vs directory {}",
                p.label,
                p.indirections,
                dir.indirections
            );
        }
    }

    #[test]
    fn owner_uses_least_bandwidth_bis_fewest_indirections() {
        let t = trace(Workload::Apache, 30_000);
        let mb = Indexing::Macroblock { bytes: 1024 };
        let owner = eval().run(t.iter().copied(), &PredictorConfig::owner().indexing(mb));
        let bis = eval().run(
            t.iter().copied(),
            &PredictorConfig::broadcast_if_shared().indexing(mb),
        );
        let group = eval().run(t.iter().copied(), &PredictorConfig::group().indexing(mb));
        assert!(owner.request_messages <= group.request_messages);
        assert!(group.request_messages <= bis.request_messages);
        assert!(bis.indirections <= group.indirections);
        assert!(group.indirections <= owner.indirections);
    }

    #[test]
    fn broadcast_if_shared_keeps_indirections_low() {
        // Paper: "keeping indirections to less than 6% of misses for
        // all of our benchmarks".
        for w in [Workload::Apache, Workload::Oltp, Workload::Slashcode] {
            let t = trace(w, 30_000);
            let p = eval().run(
                t.iter().copied(),
                &PredictorConfig::broadcast_if_shared()
                    .indexing(Indexing::Macroblock { bytes: 1024 }),
            );
            assert!(
                p.indirection_pct() < 10.0,
                "{w:?}: {:.1}%",
                p.indirection_pct()
            );
        }
    }

    #[test]
    fn storage_accounting_reported() {
        let t = trace(Workload::Oltp, 5_000);
        let p = eval().run(
            t.iter().copied(),
            &PredictorConfig::group().entries(Capacity::ISCA03),
        );
        // 16 nodes × 8192 entries × (37 payload + tag) bits.
        assert!(p.predictor_storage_bits > 16 * 8192 * 37);
    }

    #[test]
    fn warmup_excludes_leading_misses() {
        let t = trace(Workload::Oltp, 10_000);
        let all = TradeoffEvaluator::new(&SystemConfig::isca03())
            .run(t.iter().copied(), &PredictorConfig::owner());
        let warm = TradeoffEvaluator::new(&SystemConfig::isca03())
            .warmup(4_000)
            .run(t.iter().copied(), &PredictorConfig::owner());
        assert_eq!(all.misses, 10_000);
        assert_eq!(warm.misses, 6_000);
    }
}
