//! Machine-readable result persistence.
//!
//! Every report type in this crate (and in `dsp-sim`) derives serde, so
//! experiment outputs can be archived as JSON next to the CSV tables
//! and diffed across runs.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Error raised while saving or loading a JSON report.
#[derive(Debug)]
pub enum ReportIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for ReportIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportIoError::Io(e) => write!(f, "report i/o failed: {e}"),
            ReportIoError::Json(e) => write!(f, "report serialization failed: {e}"),
        }
    }
}

impl Error for ReportIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReportIoError::Io(e) => Some(e),
            ReportIoError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReportIoError {
    fn from(e: std::io::Error) -> Self {
        ReportIoError::Io(e)
    }
}

impl From<serde_json::Error> for ReportIoError {
    fn from(e: serde_json::Error) -> Self {
        ReportIoError::Json(e)
    }
}

/// Saves any serializable report as pretty-printed JSON, creating
/// parent directories as needed.
///
/// # Errors
///
/// Returns an error if directories cannot be created, the file cannot
/// be written, or the value fails to serialize.
///
/// # Example
///
/// ```
/// use dsp_analysis::{load_json, save_json, TradeoffPoint};
///
/// let point = TradeoffPoint {
///     label: "demo".into(),
///     misses: 10,
///     request_messages: 25,
///     indirections: 2,
///     insufficient_first: 2,
///     cache_to_cache: 5,
///     predictor_storage_bits: 0,
/// };
/// let dir = std::env::temp_dir().join("dsp-report-io-doc");
/// let path = dir.join("point.json");
/// save_json(&path, &point)?;
/// let back: TradeoffPoint = load_json(&path)?;
/// assert_eq!(back, point);
/// # std::fs::remove_dir_all(dir).ok();
/// # Ok::<(), dsp_analysis::ReportIoError>(())
/// ```
pub fn save_json<T: Serialize>(path: &Path, value: &T) -> Result<(), ReportIoError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a JSON report written by [`save_json`].
///
/// # Errors
///
/// Returns an error if the file cannot be read or does not parse as
/// `T`.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T, ReportIoError> {
    let text = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::CharacterizationReport;
    use crate::{characterize, TradeoffPoint};
    use dsp_trace::{Workload, WorkloadSpec};
    use dsp_types::SystemConfig;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dsp-report-io-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_characterization() {
        let config = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(Workload::Ocean, &config).scaled(1.0 / 256.0);
        let report = characterize(&spec, &config, 100, 2_000, 3);
        let dir = tmpdir("char");
        let path = dir.join("nested/report.json");
        save_json(&path, &report).expect("save");
        let back: CharacterizationReport = load_json(&path).expect("load");
        assert_eq!(back.misses, report.misses);
        assert_eq!(back.directory_indirections, report.directory_indirections);
        assert_eq!(back.degree_misses, report.degree_misses);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn round_trip_runtime_point() {
        use crate::RuntimeEvaluator;
        let config = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 256.0);
        let points = RuntimeEvaluator::new(&config)
            .misses(50, 200)
            .run(&spec, &[]);
        let dir = tmpdir("runtime");
        let path = dir.join("points.json");
        save_json(&path, &points).expect("save");
        let back: Vec<crate::RuntimePoint> = load_json(&path).expect("load");
        assert_eq!(back, points, "RuntimePoint must round-trip exactly");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn round_trip_check_report() {
        use dsp_verify::{check, Bug, CheckReport, ModelConfig};
        let dir = tmpdir("check");
        // A clean report and one with a violation (counterexample trace
        // and model state exercise the nested enums).
        for (name, config) in [
            ("clean", ModelConfig::new(2)),
            (
                "buggy",
                ModelConfig::new(2).with_bug(Bug::AcceptInsufficient),
            ),
        ] {
            let report = check(&config);
            let path = dir.join(format!("{name}.json"));
            save_json(&path, &report).expect("save");
            let back: CheckReport = load_json(&path).expect("load");
            assert_eq!(back.states_explored, report.states_explored);
            assert_eq!(back.transitions, report.transitions);
            match (&back.violation, &report.violation) {
                (None, None) => {}
                (Some(b), Some(r)) => {
                    assert_eq!(b.invariant, r.invariant);
                    assert_eq!(b.state, r.state);
                    assert_eq!(b.trace, r.trace);
                }
                other => panic!("violation did not round-trip: {other:?}"),
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = tmpdir("garbage");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").expect("write");
        let err = load_json::<TradeoffPoint>(&path).unwrap_err();
        assert!(matches!(err, ReportIoError::Json(_)));
        assert!(err.source().is_some());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_json::<TradeoffPoint>(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert!(matches!(err, ReportIoError::Io(_)));
        assert!(err.to_string().contains("report i/o failed"));
    }
}
