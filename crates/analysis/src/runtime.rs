//! Execution-driven runtime evaluation (Figures 7 and 8).

use serde::{Deserialize, Serialize};

use dsp_sim::{
    simulate_with_partition, CpuModel, DispatchMode, ProtocolKind, SetWidth, SimConfig, SimReport,
    TargetSystem, TopologySpec, ToxicSpec, TracePartition, TrainingMode,
};
use dsp_trace::WorkloadSpec;
use dsp_types::SystemConfig;

/// One protocol's runtime/traffic point, normalized the way the paper
/// plots Figures 7 and 8: runtime relative to the directory protocol
/// (= 100) and traffic per miss relative to broadcast snooping (= 100).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimePoint {
    /// Protocol/predictor label.
    pub label: String,
    /// Raw simulation report.
    pub report: SimReport,
    /// Runtime, directory = 100.
    pub normalized_runtime: f64,
    /// Traffic bytes per miss, snooping = 100.
    pub normalized_traffic: f64,
}

/// Runs the timing simulator across a set of protocols for one workload
/// and normalizes the results.
///
/// # Example
///
/// ```
/// use dsp_analysis::RuntimeEvaluator;
/// use dsp_core::PredictorConfig;
/// use dsp_sim::ProtocolKind;
/// use dsp_trace::{Workload, WorkloadSpec};
/// use dsp_types::SystemConfig;
///
/// let config = SystemConfig::isca03();
/// let spec = WorkloadSpec::preset(Workload::Apache, &config).scaled(1.0 / 256.0);
/// let points = RuntimeEvaluator::new(&config)
///     .misses(50, 200)
///     .run(&spec, &[ProtocolKind::Multicast(PredictorConfig::owner_group())]);
/// // points[0] = snooping, points[1] = directory, then the extras.
/// assert_eq!(points.len(), 3);
/// assert!((points[1].normalized_runtime - 100.0).abs() < 1e-9);
/// assert!((points[0].normalized_traffic - 100.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct RuntimeEvaluator {
    config: SystemConfig,
    target: TargetSystem,
    cpu: CpuModel,
    warmup: usize,
    measured: usize,
    seed: u64,
    runs: usize,
    training: TrainingMode,
    width: SetWidth,
    dispatch: DispatchMode,
    toxics: ToxicSpec,
    topology: TopologySpec,
}

impl RuntimeEvaluator {
    /// Creates an evaluator with the paper's target system, the simple
    /// CPU model, and small default run lengths.
    pub fn new(config: &SystemConfig) -> Self {
        RuntimeEvaluator {
            config: *config,
            target: TargetSystem::isca03_default(),
            cpu: CpuModel::Simple,
            warmup: 200,
            measured: 1_000,
            seed: 1,
            runs: 1,
            training: TrainingMode::default(),
            width: SetWidth::default(),
            dispatch: DispatchMode::default(),
            toxics: ToxicSpec::none(),
            topology: TopologySpec::Crossbar,
        }
    }

    /// Selects the CPU model (Figure 7 uses `Simple`, Figure 8
    /// `Detailed`).
    #[must_use]
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides the simulated machine (latencies, link bandwidth,
    /// cache geometry) — e.g. for bandwidth-constrained design points.
    #[must_use]
    pub fn target(mut self, target: TargetSystem) -> Self {
        self.target = target;
        self
    }

    /// Sets warmup/measured misses per node.
    #[must_use]
    pub fn misses(mut self, warmup: usize, measured: usize) -> Self {
        self.warmup = warmup;
        self.measured = measured;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Simulates each design point `runs` times with perturbed seeds and
    /// averages, following the paper's workload-variability methodology
    /// (Alameldeen et al.).
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Selects the predictor-training delivery mode (lazy by default;
    /// eager is the seed reference path — the two are observationally
    /// identical, and the golden-output suite runs both).
    #[must_use]
    pub fn training(mut self, training: TrainingMode) -> Self {
        self.training = training;
        self
    }

    /// Selects the destination-set word width (auto by default: one
    /// word up to 64 nodes, four beyond). Points are byte-identical
    /// across widths; the knob exists so the golden suite and CI can
    /// pin that.
    #[must_use]
    pub fn width(mut self, width: SetWidth) -> Self {
        self.width = width;
        self
    }

    /// Selects the event dispatch mode (batched by default; per-event
    /// is the reference loop — observationally identical, pinned by the
    /// equivalence suites).
    #[must_use]
    pub fn dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Sets the interconnect fault-injection chain every simulated
    /// protocol (baselines included) runs under. Empty by default, which
    /// keeps the crossbar on its untouched fast path.
    #[must_use]
    pub fn toxics(mut self, toxics: ToxicSpec) -> Self {
        self.toxics = toxics;
        self
    }

    /// Selects the network shape (the paper's crossbar by default).
    #[must_use]
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Builds the per-run trace partitions every protocol of this
    /// evaluator replays: one per perturbed-seed repetition.
    ///
    /// The partition depends only on the workload, the seed, the node
    /// count, and the miss quota — not on the protocol — so [`run`]
    /// builds this set once and shares it across the baselines and
    /// every extra protocol. Sweep harnesses evaluating several
    /// protocol sets over one workload can build it themselves and call
    /// [`run_partitioned`] to also share it across cells.
    ///
    /// [`run`]: RuntimeEvaluator::run
    /// [`run_partitioned`]: RuntimeEvaluator::run_partitioned
    pub fn partitions(&self, spec: &WorkloadSpec) -> Vec<TracePartition> {
        (0..self.runs)
            .map(|r| {
                TracePartition::build(
                    spec,
                    self.seed + r as u64 * 7919,
                    self.config.num_nodes(),
                    self.warmup + self.measured,
                )
            })
            .collect()
    }

    fn simulate(
        &self,
        spec: &WorkloadSpec,
        protocol: ProtocolKind,
        partitions: &[TracePartition],
    ) -> SimReport {
        let mut total = SimReport::default();
        for (r, partition) in partitions.iter().enumerate() {
            let sim = SimConfig::new(protocol)
                .cpu(self.cpu)
                .misses(self.warmup, self.measured)
                .seed(self.seed + r as u64 * 7919)
                .training(self.training)
                .width(self.width)
                .dispatch(self.dispatch)
                .toxics(self.toxics.clone())
                .topology(self.topology);
            let rep =
                simulate_with_partition(&self.config, self.target, spec, sim, partition.clone());
            total.runtime_ns += rep.runtime_ns;
            total.measured_misses += rep.measured_misses;
            total.instructions += rep.instructions;
            total.traffic.merge(&rep.traffic);
            total.indirections += rep.indirections;
            total.retries += rep.retries;
            total.broadcast_fallbacks += rep.broadcast_fallbacks;
            total.cache_to_cache += rep.cache_to_cache;
            total.total_miss_latency_ns += rep.total_miss_latency_ns;
            total.latency_histogram.merge(&rep.latency_histogram);
            total.class_counts.merge(&rep.class_counts);
        }
        total.runtime_ns /= self.runs as u64;
        total
    }

    /// Runs snooping, directory, and every protocol in `extra`,
    /// returning normalized points in that order.
    pub fn run(&self, spec: &WorkloadSpec, extra: &[ProtocolKind]) -> Vec<RuntimePoint> {
        self.run_partitioned(spec, extra, &self.partitions(spec))
    }

    /// [`run`](RuntimeEvaluator::run) over precomputed per-run trace
    /// partitions (from [`partitions`](RuntimeEvaluator::partitions),
    /// possibly shared with other evaluations of the same workload).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` does not hold exactly one partition per
    /// configured repetition.
    pub fn run_partitioned(
        &self,
        spec: &WorkloadSpec,
        extra: &[ProtocolKind],
        partitions: &[TracePartition],
    ) -> Vec<RuntimePoint> {
        assert_eq!(
            partitions.len(),
            self.runs,
            "need one trace partition per repetition"
        );
        let snoop = self.simulate(spec, ProtocolKind::Snooping, partitions);
        let dir = self.simulate(spec, ProtocolKind::Directory, partitions);
        let dir_runtime = dir.runtime_ns.max(1) as f64;
        let snoop_traffic = snoop.bytes_per_miss().max(1e-9);
        let mk = |label: String, report: SimReport| RuntimePoint {
            normalized_runtime: 100.0 * report.runtime_ns as f64 / dir_runtime,
            normalized_traffic: 100.0 * report.bytes_per_miss() / snoop_traffic,
            label,
            report,
        };
        let mut points = vec![
            mk(ProtocolKind::Snooping.label(), snoop),
            mk(ProtocolKind::Directory.label(), dir),
        ];
        for protocol in extra {
            let rep = self.simulate(spec, *protocol, partitions);
            points.push(mk(protocol.label(), rep));
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_core::{Indexing, PredictorConfig};
    use dsp_trace::Workload;

    fn spec(w: Workload) -> WorkloadSpec {
        WorkloadSpec::preset(w, &SystemConfig::isca03()).scaled(1.0 / 256.0)
    }

    fn eval() -> RuntimeEvaluator {
        RuntimeEvaluator::new(&SystemConfig::isca03())
            .misses(100, 400)
            .seed(5)
    }

    #[test]
    fn normalization_anchors() {
        let points = eval().run(&spec(Workload::Oltp), &[]);
        assert_eq!(points.len(), 2);
        assert!(
            (points[0].normalized_traffic - 100.0).abs() < 1e-9,
            "snooping traffic = 100"
        );
        assert!(
            (points[1].normalized_runtime - 100.0).abs() < 1e-9,
            "directory runtime = 100"
        );
    }

    #[test]
    fn snooping_outperforms_directory_on_oltp() {
        // Figure 7: high-miss-rate commercial workloads gain most.
        let points = eval().run(&spec(Workload::Oltp), &[]);
        let snoop = &points[0];
        assert!(
            snoop.normalized_runtime < 85.0,
            "snooping runtime {:.0} should be well under directory",
            snoop.normalized_runtime
        );
        // Directory uses roughly half of snooping's bandwidth.
        assert!(
            points[1].normalized_traffic < 75.0,
            "directory traffic {:.0}",
            points[1].normalized_traffic
        );
    }

    #[test]
    fn predictor_lands_between_endpoints() {
        let protocol = ProtocolKind::Multicast(
            PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
        );
        let points = eval().run(&spec(Workload::Oltp), &[protocol]);
        let (snoop, dir, pred) = (&points[0], &points[1], &points[2]);
        assert!(pred.normalized_traffic < snoop.normalized_traffic);
        assert!(pred.normalized_runtime < dir.normalized_runtime);
        assert!(pred.normalized_runtime >= snoop.normalized_runtime * 0.95);
        assert!(pred.report.measured_misses > 0);
        let _ = dir;
    }

    #[test]
    fn shared_partitions_match_fresh_run() {
        let e = eval().runs(2);
        let spec = spec(Workload::Oltp);
        let parts = e.partitions(&spec);
        assert_eq!(parts.len(), 2, "one partition per repetition");
        let fresh = e.run(&spec, &[]);
        let shared = e.run_partitioned(&spec, &[], &parts);
        assert_eq!(fresh, shared, "shared partitions must change nothing");
    }

    #[test]
    fn eager_and_lazy_training_produce_identical_points() {
        let protocol = ProtocolKind::Multicast(
            PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
        );
        let spec = spec(Workload::Oltp);
        let lazy = eval().training(TrainingMode::Lazy).run(&spec, &[protocol]);
        let eager = eval().training(TrainingMode::Eager).run(&spec, &[protocol]);
        assert_eq!(
            lazy, eager,
            "training mode must be observationally invisible"
        );
    }

    #[test]
    fn widths_and_dispatch_modes_produce_identical_points() {
        let protocol = ProtocolKind::Multicast(
            PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
        );
        let spec = spec(Workload::Oltp);
        let reference = eval().width(SetWidth::Wide).run(&spec, &[protocol]);
        for (width, dispatch) in [
            (SetWidth::Narrow, DispatchMode::Batched),
            (SetWidth::Narrow, DispatchMode::PerEvent),
            (SetWidth::Wide, DispatchMode::PerEvent),
        ] {
            let got = eval()
                .width(width)
                .dispatch(dispatch)
                .run(&spec, &[protocol]);
            assert_eq!(got, reference, "{width:?}/{dispatch:?} must be invisible");
        }
    }

    #[test]
    fn multiple_runs_average() {
        let e = eval().runs(2);
        let points = e.run(&spec(Workload::Apache), &[]);
        assert!(
            points[0].report.measured_misses > 400 * 16,
            "two runs accumulate misses"
        );
    }
}
