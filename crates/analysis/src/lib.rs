//! Workload characterization and evaluation harnesses.
//!
//! This crate turns the lower layers into the paper's experiments:
//!
//! * [`characterize`] measures a workload's sharing behavior — Table 2
//!   (footprints, miss PCs, % directory indirections), Figure 2
//!   (instantaneous sharing), Figure 3 (degree of sharing), and Figure 4
//!   (temporal/spatial/PC locality of cache-to-cache misses).
//! * [`TradeoffEvaluator`] replays traces through per-node predictors
//!   and the multicast-snooping accounting rules — Figures 5 and 6.
//! * [`RuntimeEvaluator`] drives the discrete-event timing simulator
//!   across protocols and normalizes runtime/traffic — Figures 7 and 8.
//! * [`TextTable`] renders results as aligned text and CSV.
//!
//! # Example
//!
//! ```
//! use dsp_analysis::{characterize, TradeoffEvaluator};
//! use dsp_core::PredictorConfig;
//! use dsp_trace::{Workload, WorkloadSpec};
//! use dsp_types::SystemConfig;
//!
//! let config = SystemConfig::isca03();
//! let spec = WorkloadSpec::preset(Workload::Apache, &config).scaled(1.0 / 256.0);
//!
//! // Table 2-style characterization.
//! let report = characterize(&spec, &config, 1_000, 5_000, 42);
//! assert!(report.indirection_pct() > 50.0);
//!
//! // One figure-5 point.
//! let trace: Vec<_> = spec.generator(42).take(5_000).collect();
//! let point = TradeoffEvaluator::new(&config)
//!     .warmup(1_000)
//!     .run(trace.iter().copied(), &PredictorConfig::group());
//! println!("{}: {:.1} msgs/miss", point.label, point.request_messages_per_miss());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod characterize;
mod render;
mod report_io;
mod runtime;
mod tradeoff;

pub use characterize::{
    characterize, characterize_trace, CharacterizationReport, LocalityCdf, SharingHistogram,
};
pub use render::{fmt_f, TextTable};
pub use report_io::{load_json, save_json, ReportIoError};
pub use runtime::{RuntimeEvaluator, RuntimePoint};
pub use tradeoff::{TradeoffEvaluator, TradeoffPoint};
