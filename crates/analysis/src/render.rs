//! Plain-text tables and CSV output for experiment reports.

use std::fmt;

/// A titled, column-aligned text table that also renders to CSV.
///
/// # Example
///
/// ```
/// use dsp_analysis::TextTable;
///
/// let mut t = TextTable::new("Demo", ["workload", "misses"]);
/// t.row(["OLTP".to_string(), "1000".to_string()]);
/// assert!(t.to_string().contains("OLTP"));
/// assert_eq!(t.to_csv(), "workload,misses\nOLTP,1000\n");
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with the given title and column headers.
    pub fn new<S, I>(title: impl Into<String>, headers: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        TextTable {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table as comma-separated values (header line + rows; cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "== {} ==", self.title)?;
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimal places for table cells.
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_columns() {
        let mut t = TextTable::new("T", ["a", "bbbb"]);
        t.row(["xxxxx".to_string(), "1".to_string()]);
        let text = t.to_string();
        assert!(text.contains("== T =="));
        assert!(text.contains("xxxxx"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new("", ["a", "b"]);
        t.row(["with,comma".to_string(), "with\"quote".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = TextTable::new("", ["a", "b"]);
        t.row(["only-one".to_string()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(10.0, 0), "10");
    }
}
