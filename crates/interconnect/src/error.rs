//! Typed validation errors for interconnect configuration.

use std::error::Error;
use std::fmt;

/// Why an [`InterconnectConfig`](crate::InterconnectConfig),
/// [`ToxicSpec`](crate::ToxicSpec), or
/// [`TopologySpec`](crate::TopologySpec) was rejected.
///
/// Construction-time validation turns what would otherwise surface as a
/// div-by-zero, an infinite serialization delay, or a link that never
/// recovers (a hang) into an explicit error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InterconnectError {
    /// Link bandwidth must be positive and finite (bytes/ns).
    NonPositiveBandwidth(f64),
    /// Traversal latency must be nonzero.
    ZeroTraversal,
    /// A topology needs at least one node.
    ZeroNodes,
    /// Bandwidth derate percent must be in `1..=100`.
    InvalidDeratePercent(u32),
    /// A scheduled toxic (congestion burst, outage) needs a nonzero
    /// period.
    ZeroPeriod,
    /// A scheduled window must fit strictly inside its period, or the
    /// link never leaves the window (messages would stall forever).
    WindowExceedsPeriod {
        /// Burst or outage window length, ns.
        window_ns: u64,
        /// Schedule period, ns.
        period_ns: u64,
    },
    /// Congestion slowdown factor must be in `1..=1000`.
    InvalidSlowdown(u32),
    /// Latency jitter bound must be at most one second (sanity cap).
    JitterTooLarge(u64),
    /// A 2D mesh needs at least one column.
    ZeroMeshColumns,
}

impl fmt::Display for InterconnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterconnectError::NonPositiveBandwidth(b) => {
                write!(
                    f,
                    "link bandwidth must be positive and finite, got {b} B/ns"
                )
            }
            InterconnectError::ZeroTraversal => {
                write!(f, "traversal latency must be nonzero")
            }
            InterconnectError::ZeroNodes => write!(f, "need at least one node"),
            InterconnectError::InvalidDeratePercent(p) => {
                write!(f, "bandwidth derate percent must be in 1..=100, got {p}")
            }
            InterconnectError::ZeroPeriod => {
                write!(f, "scheduled toxic period must be nonzero")
            }
            InterconnectError::WindowExceedsPeriod {
                window_ns,
                period_ns,
            } => write!(
                f,
                "toxic window of {window_ns} ns must fit inside its {period_ns} ns period"
            ),
            InterconnectError::InvalidSlowdown(s) => {
                write!(f, "congestion slowdown must be in 1..=1000, got {s}")
            }
            InterconnectError::JitterTooLarge(j) => {
                write!(f, "jitter bound of {j} ns exceeds the 1 s sanity cap")
            }
            InterconnectError::ZeroMeshColumns => {
                write!(f, "a 2D mesh needs at least one column")
            }
        }
    }
}

impl Error for InterconnectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_value() {
        let text = InterconnectError::NonPositiveBandwidth(0.0).to_string();
        assert!(text.contains("0 B/ns"));
        let text = InterconnectError::WindowExceedsPeriod {
            window_ns: 7,
            period_ns: 5,
        }
        .to_string();
        assert!(text.contains('7') && text.contains('5'));
    }
}
