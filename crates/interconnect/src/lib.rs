//! Totally ordered crossbar interconnect with bandwidth contention.
//!
//! All three protocols the paper evaluates require a total order of
//! coherence requests, so the target system connects its 16
//! processor/memory nodes through a single crossbar switch (paper §5.2:
//! "we model a single crossbar switch. This interconnect model includes
//! contention effects caused by limited link bandwidth").
//!
//! The model here follows Table 4: each node has one full-duplex
//! 10 GB/s link to the switch; a message serializes onto its source
//! link, reaches the switch's *ordering point* after half the 50 ns
//! traversal, is replicated to each destination (paying per-destination
//! link serialization and queuing), and arrives after the second half of
//! the traversal. Endpoint bandwidth therefore scales with destination-set
//! size — the quantity destination-set prediction is designed to save.
//!
//! # Example
//!
//! ```
//! use dsp_interconnect::{Crossbar, InterconnectConfig, Message};
//! use dsp_types::{DestSet, MessageClass, NodeId};
//!
//! let mut xbar = Crossbar::new(InterconnectConfig::isca03(), 16);
//! let msg: Message = Message {
//!     src: NodeId::new(0),
//!     dests: DestSet::broadcast(16).without(NodeId::new(0)),
//!     class: MessageClass::Request,
//! };
//! let delivery = xbar.send(0, &msg);
//! assert_eq!(delivery.arrivals.len(), 15);
//! assert!(delivery.order_time > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crossbar;
mod error;
mod reference;
mod stats;
pub mod topology;
pub mod toxic;

pub use crossbar::{Arrivals, Crossbar, Delivery, InterconnectConfig, Message};
pub use error::InterconnectError;
pub use reference::ReferenceCrossbar;
pub use stats::{ClassTraffic, LinkStats, TrafficStats};
pub use topology::{Topology, TopologySpec};
pub use toxic::{Toxic, ToxicChain, ToxicSpec};
