//! Traffic accounting by message class.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsp_types::MessageClass;

/// Counters for one message class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassTraffic {
    /// Messages injected (one per `send`, regardless of fan-out).
    pub messages: u64,
    /// Endpoint deliveries (one per destination).
    pub deliveries: u64,
    /// Bytes delivered to endpoints (deliveries × message size).
    pub bytes: u64,
}

/// Aggregate interconnect traffic, broken down by [`MessageClass`].
///
/// The paper uses two traffic metrics, both derivable from this:
/// *request messages per miss* (deliveries of Request + Forward + Retry;
/// Figures 5–6) and *total traffic bytes per miss* (all classes,
/// endpoint bytes; Figures 7–8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    per_class: [ClassTraffic; MessageClass::COUNT],
}

impl TrafficStats {
    /// Records one injected message delivered to `deliveries` endpoints.
    #[inline]
    pub fn record(&mut self, class: MessageClass, deliveries: u64) {
        let t = &mut self.per_class[class.index()];
        t.messages += 1;
        t.deliveries += deliveries;
        t.bytes += deliveries * class.bytes();
    }

    /// Counters for one class.
    pub fn class(&self, class: MessageClass) -> ClassTraffic {
        self.per_class[class.index()]
    }

    /// Endpoint deliveries of request-class messages (request, forward,
    /// retry) — the unit of the paper's trace-driven bandwidth axis.
    pub fn request_deliveries(&self) -> u64 {
        MessageClass::ALL
            .iter()
            .filter(|c| c.is_request_class())
            .map(|c| self.class(*c).deliveries)
            .sum()
    }

    /// Total endpoint bytes across all classes — the unit of the
    /// runtime-evaluation traffic axis.
    pub fn total_bytes(&self) -> u64 {
        self.per_class.iter().map(|t| t.bytes).sum()
    }

    /// Sum of per-class injected message counts.
    pub fn total_messages(&self) -> u64 {
        self.per_class.iter().map(|t| t.messages).sum()
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (mine, theirs) in self.per_class.iter_mut().zip(other.per_class.iter()) {
            mine.messages += theirs.messages;
            mine.deliveries += theirs.deliveries;
            mine.bytes += theirs.bytes;
        }
    }
}

/// Message-conservation ledger: deliveries *committed* when a message
/// entered its source link versus deliveries *recorded* at destination
/// links, in aggregate and per incoming link.
///
/// The two sides are counted at different points of the send path, so
/// any toxic or topology that silently lost or duplicated a delivery
/// would leave the ledger unbalanced. [`LinkStats::assert_reconciled`]
/// is the end-of-run invariant behind the `link_reconciled` marker in
/// the hotpath bench.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Total deliveries committed at injection time.
    pub injected: u64,
    /// Total arrivals recorded at destinations.
    pub delivered: u64,
    /// Deliveries committed per incoming link (empty on the untoxiced
    /// fast path, which only keeps the aggregate counters).
    pub per_link_injected: Vec<u64>,
    /// Arrivals recorded per incoming link.
    pub per_link_delivered: Vec<u64>,
}

impl LinkStats {
    /// A ledger with per-link counters for `num_nodes` incoming links.
    pub fn with_links(num_nodes: usize) -> Self {
        LinkStats {
            injected: 0,
            delivered: 0,
            per_link_injected: vec![0; num_nodes],
            per_link_delivered: vec![0; num_nodes],
        }
    }

    /// Whether every committed delivery was recorded, in aggregate and
    /// on each link.
    pub fn is_reconciled(&self) -> bool {
        self.injected == self.delivered && self.per_link_injected == self.per_link_delivered
    }

    /// Asserts [`LinkStats::is_reconciled`].
    ///
    /// # Panics
    ///
    /// Panics if any delivery was lost or duplicated.
    pub fn assert_reconciled(&self) {
        assert!(
            self.is_reconciled(),
            "link ledger unbalanced: {} injected vs {} delivered",
            self.injected,
            self.delivered
        );
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in MessageClass::ALL {
            let t = self.class(class);
            if t.messages > 0 {
                writeln!(
                    f,
                    "{class:>12}: {:>10} msgs {:>12} deliveries {:>14} bytes",
                    t.messages, t.deliveries, t.bytes
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = TrafficStats::default();
        s.record(MessageClass::Request, 15);
        s.record(MessageClass::Request, 3);
        s.record(MessageClass::DataResponse, 1);
        let req = s.class(MessageClass::Request);
        assert_eq!(req.messages, 2);
        assert_eq!(req.deliveries, 18);
        assert_eq!(req.bytes, 18 * 8);
        assert_eq!(s.class(MessageClass::DataResponse).bytes, 72);
    }

    #[test]
    fn request_deliveries_cover_request_classes_only() {
        let mut s = TrafficStats::default();
        s.record(MessageClass::Request, 2);
        s.record(MessageClass::Forward, 3);
        s.record(MessageClass::Retry, 4);
        s.record(MessageClass::DataResponse, 100);
        s.record(MessageClass::Writeback, 100);
        assert_eq!(s.request_deliveries(), 9);
    }

    #[test]
    fn totals() {
        let mut s = TrafficStats::default();
        s.record(MessageClass::Request, 15);
        s.record(MessageClass::DataResponse, 1);
        assert_eq!(s.total_bytes(), 15 * 8 + 72);
        assert_eq!(s.total_messages(), 2);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = TrafficStats::default();
        a.record(MessageClass::Request, 5);
        let mut b = TrafficStats::default();
        b.record(MessageClass::Request, 7);
        b.record(MessageClass::Control, 1);
        a.merge(&b);
        assert_eq!(a.class(MessageClass::Request).deliveries, 12);
        assert_eq!(a.class(MessageClass::Control).messages, 1);
    }

    #[test]
    fn link_ledger_reconciles_only_when_balanced() {
        let mut l = LinkStats::with_links(2);
        l.injected += 3;
        l.delivered += 3;
        l.per_link_injected[1] += 3;
        l.per_link_delivered[1] += 3;
        assert!(l.is_reconciled());
        l.assert_reconciled();
        l.per_link_delivered[1] -= 1;
        assert!(!l.is_reconciled(), "per-link drop must unbalance");
        l.per_link_delivered[1] += 1;
        l.delivered += 1;
        assert!(!l.is_reconciled(), "aggregate duplicate must unbalance");
    }

    #[test]
    fn display_skips_empty_classes() {
        let mut s = TrafficStats::default();
        s.record(MessageClass::Retry, 2);
        let text = s.to_string();
        assert!(text.contains("retry"));
        assert!(!text.contains("writeback"));
    }
}
