//! Topologies over the ordered-interconnect contention model, with
//! optional per-link fault injection.
//!
//! [`Topology`] generalizes [`Crossbar`] along two axes while keeping
//! its link-occupancy and total-order machinery:
//!
//! - **Shape.** [`TopologySpec::Crossbar`] is the paper's single
//!   switch: every route pays `traversal_ns / 2` on each side of the
//!   ordering point. [`TopologySpec::Mesh2d`] is a 2D mesh of routers
//!   with XY dimension-ordered routing through a root router (all
//!   three protocols require a total order of coherence requests, so
//!   the mesh serializes every message through the root — the
//!   ordering-point discipline switched fabrics like the AlphaServer
//!   GS320's impose). A node at XY-distance `d` from the root pays
//!   `link_ns + hop_ns * d` per half-traversal, so latency grows with
//!   hop count while endpoint serialization and queuing stay exactly
//!   the crossbar's. With `hop_ns = 0` and `2 * link_ns =
//!   traversal_ns` every route's hop latency sums to the crossbar
//!   traversal and the mesh reproduces the crossbar byte-identically.
//!
//! - **Faults.** A [`ToxicSpec`] chain injects deterministic per-link
//!   jitter, derating, congestion bursts, and outages (see
//!   [`crate::toxic`]).
//!
//! The crossbar shape with an empty toxic chain delegates straight to
//! the untouched [`Crossbar::send_into`] fast path, so existing golden
//! outputs and microloop throughput are preserved bit-for-bit; every
//! other combination runs the modeled path, which additionally keeps a
//! per-link [`LinkStats`] conservation ledger and clamps arrivals so a
//! link never reorders (FIFO per destination even under jitter).

use serde::{Deserialize, Serialize};

use dsp_types::{MessageClass, NodeId};

use crate::crossbar::{Arrivals, Crossbar, Delivery, InterconnectConfig, Message};
use crate::error::InterconnectError;
use crate::stats::{LinkStats, TrafficStats};
use crate::toxic::{ToxicChain, ToxicSpec};

/// Which network shape connects the nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The paper's single crossbar switch: route-independent
    /// `traversal_ns / 2` on each side of the ordering point.
    #[default]
    Crossbar,
    /// A `cols`-wide 2D mesh (rows = `ceil(n / cols)`), XY routing
    /// through the root router at the grid center.
    Mesh2d {
        /// Grid width; node `i` sits at `(i % cols, i / cols)`.
        cols: u32,
        /// Node↔router injection/ejection channel latency, ns.
        link_ns: u64,
        /// Per-hop router-to-router latency, ns.
        hop_ns: u64,
    },
}

impl TopologySpec {
    /// Validates the shape parameters.
    pub fn validate(&self) -> Result<(), InterconnectError> {
        match *self {
            TopologySpec::Crossbar => Ok(()),
            TopologySpec::Mesh2d { cols, .. } => {
                if cols == 0 {
                    Err(InterconnectError::ZeroMeshColumns)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Short human label for table rows (`crossbar`, `mesh8x8@5ns`).
    pub fn label(&self, num_nodes: usize) -> String {
        match *self {
            TopologySpec::Crossbar => "crossbar".to_string(),
            TopologySpec::Mesh2d { cols, hop_ns, .. } => {
                let rows = num_nodes.div_ceil(cols as usize);
                format!("mesh{cols}x{rows}@{hop_ns}ns")
            }
        }
    }

    /// Per-node half-traversal latencies (distance to/from the ordering
    /// root), or `None` for the route-independent crossbar.
    fn halves(&self, num_nodes: usize) -> Option<Vec<u64>> {
        match *self {
            TopologySpec::Crossbar => None,
            TopologySpec::Mesh2d {
                cols,
                link_ns,
                hop_ns,
            } => {
                let cols = cols as usize;
                let rows = num_nodes.div_ceil(cols);
                let (root_x, root_y) = ((cols - 1) / 2, (rows - 1) / 2);
                Some(
                    (0..num_nodes)
                        .map(|i| {
                            let (x, y) = (i % cols, i / cols);
                            let hops = x.abs_diff(root_x) + y.abs_diff(root_y);
                            link_ns + hop_ns * hops as u64
                        })
                        .collect(),
                )
            }
        }
    }
}

/// State of the modeled (non-fast-path) send: mesh half-latencies
/// and/or an active toxic chain, plus the bookkeeping only this path
/// maintains.
#[derive(Clone, Debug)]
struct Modeled {
    /// Half-traversal latency per node, both directions (uniform
    /// `traversal_ns / 2` when the shape is the crossbar).
    half: Vec<u64>,
    chain: ToxicChain,
    /// Last arrival committed per destination: jittered deliveries are
    /// clamped so each incoming link stays FIFO.
    last_arrival: Vec<u64>,
}

/// A network of `n` nodes: shape + toxic chain over the shared
/// link-occupancy / total-order contention model.
///
/// Mirrors the [`Crossbar`] API (`send_into`, `send`,
/// `serialization_ns`, `stats`, …) so the simulator is agnostic to
/// which combination is running.
#[derive(Clone, Debug)]
pub struct Topology {
    xbar: Crossbar,
    modeled: Option<Box<Modeled>>,
    links: LinkStats,
}

impl Topology {
    /// Builds `spec` + `toxics` over `num_nodes` nodes, deriving every
    /// toxic stream from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on parameters [`Topology::try_new`] rejects.
    pub fn new(
        config: InterconnectConfig,
        num_nodes: usize,
        spec: &TopologySpec,
        toxics: &ToxicSpec,
        seed: u64,
    ) -> Self {
        Topology::try_new(config, num_nodes, spec, toxics, seed)
            .expect("invalid topology or toxic spec")
    }

    /// Builds `spec` + `toxics` over `num_nodes` nodes, rejecting
    /// invalid parameters with a typed error.
    pub fn try_new(
        config: InterconnectConfig,
        num_nodes: usize,
        spec: &TopologySpec,
        toxics: &ToxicSpec,
        seed: u64,
    ) -> Result<Self, InterconnectError> {
        spec.validate()?;
        toxics.validate()?;
        let xbar = Crossbar::try_new(config, num_nodes)?;
        let mesh_half = spec.halves(num_nodes);
        let modeled = if mesh_half.is_none() && toxics.is_empty() {
            None
        } else {
            let uniform = config.traversal_ns / 2;
            Some(Box::new(Modeled {
                half: mesh_half.unwrap_or_else(|| vec![uniform; num_nodes]),
                chain: ToxicChain::new(toxics, num_nodes, seed),
                last_arrival: vec![0; num_nodes],
            }))
        };
        let links = if modeled.is_some() {
            LinkStats::with_links(num_nodes)
        } else {
            LinkStats::default()
        };
        Ok(Topology {
            xbar,
            modeled,
            links,
        })
    }

    /// Whether sends delegate to the untouched crossbar fast path
    /// (crossbar shape, empty toxic chain).
    pub fn is_direct(&self) -> bool {
        self.modeled.is_none()
    }

    /// The configured timing parameters.
    pub fn config(&self) -> InterconnectConfig {
        self.xbar.config()
    }

    /// Serialization delay of `class`-sized messages on one link, in ns.
    #[inline]
    pub fn serialization_ns(&self, class: MessageClass) -> u64 {
        self.xbar.serialization_ns(class)
    }

    /// Switch→node half-traversal latency for `node` — the
    /// destination-side latency a message pays after the ordering
    /// point, before any toxics. `traversal_ns / 2` on the crossbar;
    /// distance-dependent on a mesh.
    pub fn dst_half_ns(&self, node: NodeId) -> u64 {
        match &self.modeled {
            None => self.xbar.config().traversal_ns / 2,
            Some(m) => m.half[node.index()],
        }
    }

    /// Injects `msg` at time `now` (see [`Crossbar::send_into`]):
    /// writes per-destination arrival times into `arrivals` and returns
    /// the ordering time.
    pub fn send_into<const W: usize>(
        &mut self,
        now: u64,
        msg: &Message<W>,
        arrivals: &mut Arrivals,
    ) -> u64 {
        if self.modeled.is_some() {
            return self.send_modeled(now, msg, arrivals);
        }
        let order_time = self.xbar.send_into(now, msg, arrivals);
        // Fast path keeps only the aggregate side of the conservation
        // ledger — two scalar adds, so pay-for-what-you-use holds.
        self.links.injected += msg.dests.len() as u64;
        self.links.delivered += arrivals.len() as u64;
        order_time
    }

    /// The modeled path: same contention structure as
    /// [`Crossbar::send_into`], with per-node half latencies, the toxic
    /// chain applied to each link, and the per-link conservation
    /// ledger. Outgoing link of node `i` is toxic-link `i`; incoming is
    /// `n + i`.
    fn send_modeled<const W: usize>(
        &mut self,
        now: u64,
        msg: &Message<W>,
        arrivals: &mut Arrivals,
    ) -> u64 {
        let m = self.modeled.as_deref_mut().expect("modeled path");
        let x = &mut self.xbar;
        let n = x.src_free_at.len();
        arrivals.clear();
        let ser = x.ser_ns[msg.class.index()];
        let s = msg.src.index();
        // Source link: queue, wait out any outage, serialize at the
        // toxic-scaled rate.
        let queued = now.max(x.src_free_at[s]);
        let start = m.chain.release(s, queued);
        let src_ser = m.chain.scaled_ser(s, ser, start);
        x.src_free_at[s] = start + src_ser;
        let src_jitter = m.chain.jitter(s);
        // Ordering point stays monotone regardless of injected delays.
        let order_time = (start + src_ser + m.half[s] + src_jitter).max(x.last_order_time);
        x.last_order_time = order_time;
        for dest in msg.dests {
            let d = dest.index();
            self.links.per_link_injected[d] += 1;
            let queued = order_time.max(x.dst_free_at[d]);
            let d_start = m.chain.release(n + d, queued);
            let dst_ser = m.chain.scaled_ser(n + d, ser, d_start);
            x.dst_free_at[d] = d_start + dst_ser;
            let dst_jitter = m.chain.jitter(n + d);
            // FIFO clamp: jitter may stretch but never reorder a link.
            let arrive = (d_start + dst_ser + m.half[d] + dst_jitter).max(m.last_arrival[d]);
            m.last_arrival[d] = arrive;
            arrivals.push((dest, arrive));
            self.links.per_link_delivered[d] += 1;
        }
        x.stats.record(msg.class, arrivals.len() as u64);
        self.links.injected += msg.dests.len() as u64;
        self.links.delivered += arrivals.len() as u64;
        order_time
    }

    /// Injects `msg` at time `now`; returns an owned [`Delivery`].
    pub fn send<const W: usize>(&mut self, now: u64, msg: &Message<W>) -> Delivery {
        let mut arrivals = Arrivals::new();
        let order_time = self.send_into(now, msg, &mut arrivals);
        Delivery {
            order_time,
            arrivals,
        }
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> TrafficStats {
        self.xbar.stats()
    }

    /// Clears traffic statistics (e.g. after warmup) without resetting
    /// link occupancy or the conservation ledger.
    pub fn reset_stats(&mut self) {
        self.xbar.reset_stats();
    }

    /// The message-conservation ledger.
    pub fn link_stats(&self) -> &LinkStats {
        &self.links
    }

    /// End-of-run invariant: every delivery committed at injection was
    /// recorded at a destination — toxics delay, they never drop.
    ///
    /// # Panics
    ///
    /// Panics if the ledger is unbalanced.
    pub fn assert_conserved(&self) {
        self.links.assert_reconciled();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toxic::Toxic;
    use dsp_types::DestSet;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn msg(src: usize, dests: DestSet<4>, class: MessageClass) -> Message<4> {
        Message {
            src: n(src),
            dests,
            class,
        }
    }

    fn drive(t: &mut Topology) -> String {
        let mut out = String::new();
        for i in 0..200u64 {
            let src = (i % 16) as usize;
            let dests = match i % 3 {
                0 => DestSet::single(n((i as usize * 7) % 16)),
                1 => DestSet::from_iter([n(1), n(4), n(9)]),
                _ => DestSet::broadcast(16).without(n(src)),
            };
            let class = MessageClass::ALL[i as usize % MessageClass::COUNT];
            let d = t.send(i * 3, &msg(src, dests, class));
            out.push_str(&format!("{}:{:?}\n", d.order_time, d.arrivals));
        }
        out
    }

    #[test]
    fn empty_chain_crossbar_is_byte_identical_to_raw_crossbar() {
        let cfg = InterconnectConfig::isca03();
        let mut topo = Topology::new(cfg, 16, &TopologySpec::Crossbar, &ToxicSpec::none(), 1);
        assert!(topo.is_direct());
        let mut raw = Crossbar::new(cfg, 16);
        for i in 0..100u64 {
            let m = msg(
                (i % 16) as usize,
                DestSet::broadcast(16),
                MessageClass::Request,
            );
            assert_eq!(topo.send(i * 2, &m), raw.send(i * 2, &m));
        }
        topo.assert_conserved();
    }

    #[test]
    fn crossbar_chain_with_toxics_still_conserves() {
        let toxics = ToxicSpec::none()
            .with(Toxic::LatencyJitter { max_ns: 40 })
            .with(Toxic::BandwidthDerate { percent: 60 })
            .with(Toxic::CongestionBurst {
                period_ns: 500,
                burst_ns: 80,
                slowdown: 6,
            })
            .with(Toxic::Outage {
                period_ns: 900,
                down_ns: 120,
            });
        let cfg = InterconnectConfig::isca03();
        let mut topo = Topology::new(cfg, 16, &TopologySpec::Crossbar, &toxics, 42);
        assert!(!topo.is_direct());
        let trace = drive(&mut topo);
        topo.assert_conserved();
        assert!(topo.link_stats().injected > 0);
        // Same seed reproduces the stream byte-for-byte.
        let mut again = Topology::new(cfg, 16, &TopologySpec::Crossbar, &toxics, 42);
        assert_eq!(trace, drive(&mut again));
        // A different seed shifts the jittered timings.
        let mut other = Topology::new(cfg, 16, &TopologySpec::Crossbar, &toxics, 43);
        assert_ne!(trace, drive(&mut other));
    }

    #[test]
    fn toxics_only_delay_never_speed_up() {
        let toxics = ToxicSpec::none()
            .with(Toxic::BandwidthDerate { percent: 50 })
            .with(Toxic::Outage {
                period_ns: 700,
                down_ns: 90,
            });
        let cfg = InterconnectConfig::isca03();
        let mut clean = Topology::new(cfg, 16, &TopologySpec::Crossbar, &ToxicSpec::none(), 9);
        let mut toxic = Topology::new(cfg, 16, &TopologySpec::Crossbar, &toxics, 9);
        for i in 0..150u64 {
            let m = msg(
                (i % 16) as usize,
                DestSet::from_iter([n(2), n(11)]),
                MessageClass::DataResponse,
            );
            let a = clean.send(i * 5, &m);
            let b = toxic.send(i * 5, &m);
            assert!(b.order_time >= a.order_time);
            for (x, y) in a.arrivals.iter().zip(b.arrivals.iter()) {
                assert!(y.1 >= x.1, "toxic arrival earlier than clean");
            }
        }
    }

    #[test]
    fn mesh_latency_grows_with_hop_distance() {
        // 4x4 mesh, root at (1,1) = node 5. Node 5 is 0 hops out;
        // node 15 at (3,3) is 4 hops.
        let spec = TopologySpec::Mesh2d {
            cols: 4,
            link_ns: 10,
            hop_ns: 5,
        };
        let cfg = InterconnectConfig::isca03();
        let topo = Topology::new(cfg, 16, &spec, &ToxicSpec::none(), 0);
        assert!(!topo.is_direct());
        assert_eq!(topo.dst_half_ns(n(5)), 10);
        assert_eq!(topo.dst_half_ns(n(15)), 10 + 5 * 4);
        assert_eq!(topo.dst_half_ns(n(0)), 10 + 5 * 2);
        assert_eq!(spec.label(16), "mesh4x4@5ns");

        let mut near = Topology::new(cfg, 16, &spec, &ToxicSpec::none(), 0);
        let mut far = Topology::new(cfg, 16, &spec, &ToxicSpec::none(), 0);
        let to_near = near.send(0, &msg(5, DestSet::single(n(5)), MessageClass::Request));
        let to_far = far.send(0, &msg(15, DestSet::single(n(15)), MessageClass::Request));
        assert!(
            to_far.arrivals[0].1 > to_near.arrivals[0].1,
            "4-hop route must be slower than the root's own"
        );
    }

    #[test]
    fn degenerate_mesh_matches_crossbar_exactly() {
        // hop_ns = 0 and 2 * link_ns = traversal: every route's hop
        // latency sums to the crossbar traversal.
        let cfg = InterconnectConfig::isca03();
        let spec = TopologySpec::Mesh2d {
            cols: 4,
            link_ns: cfg.traversal_ns / 2,
            hop_ns: 0,
        };
        let mut mesh = Topology::new(cfg, 16, &spec, &ToxicSpec::none(), 0);
        let mut raw = Crossbar::new(cfg, 16);
        for i in 0..120u64 {
            let m = msg(
                (i % 16) as usize,
                DestSet::broadcast(16).without(n((i % 16) as usize)),
                MessageClass::ALL[i as usize % MessageClass::COUNT],
            );
            assert_eq!(mesh.send(i * 4, &m), raw.send(i * 4, &m));
        }
        mesh.assert_conserved();
    }

    #[test]
    fn validation_flows_through() {
        let cfg = InterconnectConfig::isca03();
        assert_eq!(
            Topology::try_new(
                cfg,
                16,
                &TopologySpec::Mesh2d {
                    cols: 0,
                    link_ns: 10,
                    hop_ns: 5
                },
                &ToxicSpec::none(),
                0,
            )
            .err(),
            Some(InterconnectError::ZeroMeshColumns)
        );
        assert!(Topology::try_new(
            cfg,
            16,
            &TopologySpec::Crossbar,
            &ToxicSpec::none().with(Toxic::BandwidthDerate { percent: 0 }),
            0,
        )
        .is_err());
    }
}
