//! The crossbar switch model.

use serde::{Deserialize, Serialize};

use dsp_types::{DestSet, InlineVec, MessageClass, NodeId, MAX_NODES};

use crate::error::InterconnectError;
use crate::stats::TrafficStats;

/// Link and switch timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Full-duplex per-node link bandwidth, bytes per nanosecond
    /// (10 GB/s = 10 B/ns in Table 4).
    pub link_bytes_per_ns: f64,
    /// End-to-end traversal latency in ns (50 in Table 4), split evenly
    /// between the source→switch and switch→destination halves.
    pub traversal_ns: u64,
}

impl InterconnectConfig {
    /// Paper Table 4: 10 GB/s links, 50 ns traversal.
    pub fn isca03() -> Self {
        InterconnectConfig {
            link_bytes_per_ns: 10.0,
            traversal_ns: 50,
        }
    }

    /// Sets the per-node link bandwidth in bytes/ns (builder style).
    #[must_use]
    pub fn bandwidth(mut self, bytes_per_ns: f64) -> Self {
        self.link_bytes_per_ns = bytes_per_ns;
        self
    }

    /// Sets the end-to-end traversal latency in ns (builder style).
    #[must_use]
    pub fn traversal(mut self, ns: u64) -> Self {
        self.traversal_ns = ns;
        self
    }

    /// Rejects parameters that would otherwise surface downstream as a
    /// div-by-zero serialization delay or a degenerate zero-latency
    /// network.
    pub fn validate(&self) -> Result<(), InterconnectError> {
        if !self.link_bytes_per_ns.is_finite() || self.link_bytes_per_ns <= 0.0 {
            return Err(InterconnectError::NonPositiveBandwidth(
                self.link_bytes_per_ns,
            ));
        }
        if self.traversal_ns == 0 {
            return Err(InterconnectError::ZeroTraversal);
        }
        Ok(())
    }
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig::isca03()
    }
}

/// One message to inject: source, destination set, and class (the class
/// determines the wire size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message<const W: usize = 4> {
    /// Injecting node.
    pub src: NodeId,
    /// Endpoint destinations (may include or exclude the source; the
    /// crossbar delivers exactly what is asked).
    pub dests: DestSet<W>,
    /// Message class, fixing its size and accounting bucket.
    pub class: MessageClass,
}

/// Per-destination arrival times of one message, in destination index
/// order. Stored inline (a [`DestSet`] holds at most [`MAX_NODES`]
/// nodes), so building a [`Delivery`] never allocates.
pub type Arrivals = InlineVec<(NodeId, u64), MAX_NODES>;

/// The outcome of injecting a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the message passed the switch's ordering point. All
    /// messages are totally ordered by this time (ties broken by
    /// injection sequence, which the simulator preserves).
    pub order_time: u64,
    /// Arrival time at each destination, in destination index order.
    pub arrivals: Arrivals,
}

/// A single totally-ordered crossbar connecting `n` nodes.
///
/// Contention model: each node has one outgoing and one incoming link;
/// a message occupies its source link for `size / bandwidth` ns (queuing
/// behind earlier messages), passes the ordering point after half the
/// traversal, then occupies each destination's incoming link in turn.
/// Multicasts pay source serialization once but per-destination delivery
/// — the endpoint-bandwidth cost structure that motivates destination-set
/// prediction.
#[derive(Clone, Debug)]
pub struct Crossbar {
    config: InterconnectConfig,
    /// Serialization delay per message class, precomputed at
    /// construction so the send path never touches floating point.
    pub(crate) ser_ns: [u64; MessageClass::COUNT],
    pub(crate) src_free_at: Vec<u64>,
    pub(crate) dst_free_at: Vec<u64>,
    pub(crate) last_order_time: u64,
    pub(crate) stats: TrafficStats,
}

impl Crossbar {
    /// Creates a crossbar for `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics on a config [`Crossbar::try_new`] rejects.
    pub fn new(config: InterconnectConfig, num_nodes: usize) -> Self {
        Crossbar::try_new(config, num_nodes).expect("invalid interconnect config")
    }

    /// Creates a crossbar for `num_nodes` nodes, rejecting zero nodes,
    /// non-positive bandwidth, and zero traversal with a typed error.
    pub fn try_new(
        config: InterconnectConfig,
        num_nodes: usize,
    ) -> Result<Self, InterconnectError> {
        if num_nodes == 0 {
            return Err(InterconnectError::ZeroNodes);
        }
        config.validate()?;
        let mut ser_ns = [0u64; MessageClass::COUNT];
        for class in MessageClass::ALL {
            ser_ns[class.index()] =
                ((class.bytes() as f64 / config.link_bytes_per_ns).ceil() as u64).max(1);
        }
        Ok(Crossbar {
            config,
            ser_ns,
            src_free_at: vec![0; num_nodes],
            dst_free_at: vec![0; num_nodes],
            last_order_time: 0,
            stats: TrafficStats::default(),
        })
    }

    /// The configured timing parameters.
    pub fn config(&self) -> InterconnectConfig {
        self.config
    }

    /// Serialization delay of `class`-sized messages on one link, in ns
    /// (rounded up, minimum 1).
    #[inline]
    pub fn serialization_ns(&self, class: MessageClass) -> u64 {
        self.ser_ns[class.index()]
    }

    /// Injects `msg` at time `now`, writing per-destination arrival
    /// times into the caller's `arrivals` buffer (cleared first) and
    /// returning the ordering time, updating link occupancy and traffic
    /// statistics.
    ///
    /// This is the hot-path entry point: with a reused buffer it
    /// neither allocates nor copies. [`Crossbar::send`] wraps it for
    /// callers that prefer an owned [`Delivery`].
    pub fn send_into<const W: usize>(
        &mut self,
        now: u64,
        msg: &Message<W>,
        arrivals: &mut Arrivals,
    ) -> u64 {
        arrivals.clear();
        let ser = self.serialization_ns(msg.class);
        let half = self.config.traversal_ns / 2;
        // Source link: queue behind earlier injections from this node.
        let start = now.max(self.src_free_at[msg.src.index()]);
        self.src_free_at[msg.src.index()] = start + ser;
        // Ordering point: monotonically non-decreasing across the switch.
        let order_time = (start + ser + half).max(self.last_order_time);
        self.last_order_time = order_time;
        // Destination links.
        for dest in msg.dests {
            let d_start = order_time.max(self.dst_free_at[dest.index()]);
            self.dst_free_at[dest.index()] = d_start + ser;
            arrivals.push((dest, d_start + ser + half));
        }
        self.stats.record(msg.class, arrivals.len() as u64);
        order_time
    }

    /// Injects `msg` at time `now`; returns the ordering time and
    /// per-destination arrival times as an owned [`Delivery`].
    pub fn send<const W: usize>(&mut self, now: u64, msg: &Message<W>) -> Delivery {
        let mut arrivals = Arrivals::new();
        let order_time = self.send_into(now, msg, &mut arrivals);
        Delivery {
            order_time,
            arrivals,
        }
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Clears the traffic statistics (e.g. after warmup) without
    /// resetting link occupancy.
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> Crossbar {
        Crossbar::new(InterconnectConfig::isca03(), 16)
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn uncontended_latency_is_traversal_plus_serialization() {
        let mut x = xbar();
        let msg: Message = Message {
            src: n(0),
            dests: DestSet::single(n(5)),
            class: MessageClass::Request,
        };
        let d = x.send(0, &msg);
        // 8B at 10B/ns -> 1ns serialization; 25 + 25 traversal halves.
        // src: 0..1, order at 26, dst: 26..27, arrive 27 + 25 = 52.
        assert_eq!(d.order_time, 26);
        assert_eq!(d.arrivals, vec![(n(5), 52)]);
    }

    #[test]
    fn data_responses_serialize_longer() {
        let mut x = xbar();
        let req = x.send(
            0,
            &Message::<4> {
                src: n(0),
                dests: DestSet::single(n(1)),
                class: MessageClass::Request,
            },
        );
        let mut x2 = xbar();
        let data = x2.send(
            0,
            &Message::<4> {
                src: n(0),
                dests: DestSet::single(n(1)),
                class: MessageClass::DataResponse,
            },
        );
        assert!(
            data.arrivals[0].1 > req.arrivals[0].1,
            "72B serializes slower than 8B"
        );
    }

    #[test]
    fn source_link_queues_back_to_back_sends() {
        let mut x = xbar();
        let msg: Message = Message {
            src: n(0),
            dests: DestSet::single(n(1)),
            class: MessageClass::DataResponse, // 8ns serialization
        };
        let first = x.send(0, &msg);
        let second = x.send(0, &msg);
        assert!(
            second.order_time >= first.order_time + 8,
            "second send queues"
        );
    }

    #[test]
    fn destination_link_contention_staggers_arrivals() {
        let mut x = xbar();
        // Two different sources target the same destination at once.
        let a = x.send(
            0,
            &Message::<4> {
                src: n(0),
                dests: DestSet::single(n(9)),
                class: MessageClass::DataResponse,
            },
        );
        let b = x.send(
            0,
            &Message::<4> {
                src: n(1),
                dests: DestSet::single(n(9)),
                class: MessageClass::DataResponse,
            },
        );
        assert!(
            b.arrivals[0].1 >= a.arrivals[0].1 + 8,
            "incoming link serializes"
        );
    }

    #[test]
    fn order_times_are_totally_ordered() {
        let mut x = xbar();
        let mut last = 0;
        for i in 0..50 {
            let d = x.send(
                i * 3,
                &Message::<4> {
                    src: n((i % 16) as usize),
                    dests: DestSet::broadcast(16),
                    class: MessageClass::Request,
                },
            );
            assert!(d.order_time >= last, "ordering point must be monotone");
            last = d.order_time;
        }
    }

    #[test]
    fn multicast_delivers_to_every_destination() {
        let mut x = xbar();
        let dests = DestSet::from_iter([n(1), n(4), n(9)]);
        let d = x.send(
            100,
            &Message::<4> {
                src: n(0),
                dests,
                class: MessageClass::Request,
            },
        );
        assert_eq!(d.arrivals.len(), 3);
        let stats = x.stats();
        assert_eq!(stats.class(MessageClass::Request).deliveries, 3);
        assert_eq!(stats.class(MessageClass::Request).messages, 1);
    }

    #[test]
    fn empty_destination_set_is_a_no_op_delivery() {
        let mut x = xbar();
        let d = x.send(
            5,
            &Message::<4> {
                src: n(0),
                dests: DestSet::empty(),
                class: MessageClass::Control,
            },
        );
        assert!(d.arrivals.is_empty());
        assert_eq!(x.stats().class(MessageClass::Control).deliveries, 0);
        assert_eq!(x.stats().class(MessageClass::Control).messages, 1);
    }

    #[test]
    fn reset_stats_keeps_link_state() {
        let mut x = xbar();
        let msg: Message = Message {
            src: n(0),
            dests: DestSet::single(n(1)),
            class: MessageClass::Request,
        };
        x.send(0, &msg);
        x.reset_stats();
        assert_eq!(x.stats().total_messages(), 0);
        let d = x.send(0, &msg);
        assert!(d.order_time > 26, "link occupancy survived the stats reset");
    }

    #[test]
    fn config_builders_and_validation() {
        let cfg = InterconnectConfig::isca03().bandwidth(2.5).traversal(80);
        assert_eq!(cfg.link_bytes_per_ns, 2.5);
        assert_eq!(cfg.traversal_ns, 80);
        assert!(cfg.validate().is_ok());
        assert_eq!(
            InterconnectConfig::isca03().bandwidth(0.0).validate(),
            Err(InterconnectError::NonPositiveBandwidth(0.0))
        );
        assert!(InterconnectConfig::isca03()
            .bandwidth(f64::NAN)
            .validate()
            .is_err());
        assert_eq!(
            InterconnectConfig::isca03().traversal(0).validate(),
            Err(InterconnectError::ZeroTraversal)
        );
        assert_eq!(
            Crossbar::try_new(InterconnectConfig::isca03(), 0).err(),
            Some(InterconnectError::ZeroNodes)
        );
        assert!(Crossbar::try_new(InterconnectConfig::isca03(), 16).is_ok());
    }

    #[test]
    fn broadcast_costs_n_deliveries() {
        let mut x = xbar();
        x.send(
            0,
            &Message::<4> {
                src: n(0),
                dests: DestSet::broadcast(16).without(n(0)),
                class: MessageClass::Request,
            },
        );
        assert_eq!(x.stats().request_deliveries(), 15);
    }
}
