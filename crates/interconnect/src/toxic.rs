//! Composable, deterministic per-link fault injection ("toxics").
//!
//! Modeled on Toxiproxy-style proxies: a [`ToxicSpec`] is an ordered
//! chain of independent fault models that every link applies to the
//! traffic passing through it. The paper's crossbar is ideal — fixed
//! latency, infinite buffering — so the toxics are how the harness
//! stresses destination-set prediction under a network that jitters,
//! saturates, or transiently degrades.
//!
//! Determinism contract: given the same chain, node count, and seed,
//! a [`ToxicChain`] produces byte-identical timing on every run. Each
//! link owns a private [`SmallRng`] stream — seeded from
//! `mix64(mix64(seed) ^ link-index)`, never from the simulator's
//! per-node gap-draw streams — so adding or removing a toxic cannot
//! shift any other random sequence in the system. Scheduled toxics
//! (congestion bursts, outages) use no randomness at all beyond a
//! per-link phase offset fixed at construction; their windows are pure
//! functions of the timestamp.
//!
//! Conservation contract: toxics delay and stretch, they never drop.
//! A message caught in an outage window waits for the link to recover;
//! the [`LinkStats`](crate::LinkStats) ledger proves end-to-end that
//! every delivery committed at injection was eventually recorded.

use rand::{Rng, SeedableRng, SmallRng};
use serde::{Deserialize, Serialize};

use dsp_types::hash::mix64;

use crate::error::InterconnectError;

/// Jitter bounds beyond one second are almost certainly a unit mistake.
const MAX_JITTER_NS: u64 = 1_000_000_000;

/// One fault model in a chain. All parameters are integers so the
/// injected timing never depends on float rounding.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Toxic {
    /// Adds a uniform draw from `0..=max_ns` to each traversal half
    /// (source side and destination side draw from their own link
    /// streams). Models switch arbitration and queueing noise.
    LatencyJitter {
        /// Inclusive upper bound of the per-hop jitter draw, ns.
        max_ns: u64,
    },
    /// Derates every link to `percent`% of its configured bandwidth:
    /// serialization delays stretch by `100 / percent`, rounded up.
    BandwidthDerate {
        /// Remaining bandwidth, percent of nominal (`1..=100`).
        percent: u32,
    },
    /// Periodic congestion bursts: within the first `burst_ns` of each
    /// `period_ns` window (per-link phase offset), serialization is
    /// multiplied by `slowdown`. Models recurring cross-traffic that
    /// collapses a link's effective bandwidth.
    CongestionBurst {
        /// Schedule period, ns.
        period_ns: u64,
        /// Burst length at the start of each period, ns.
        burst_ns: u64,
        /// Serialization multiplier while the burst is active.
        slowdown: u32,
    },
    /// Periodic transient outage: within the first `down_ns` of each
    /// `period_ns` window (per-link phase offset) the link is down, and
    /// any message that would start there instead waits for recovery.
    /// Delivery is delayed, never dropped.
    Outage {
        /// Schedule period, ns.
        period_ns: u64,
        /// Outage length at the start of each period, ns. Must be
        /// strictly less than the period so the link always recovers.
        down_ns: u64,
    },
}

impl Toxic {
    /// Validates this toxic's parameters.
    pub fn validate(&self) -> Result<(), InterconnectError> {
        match *self {
            Toxic::LatencyJitter { max_ns } => {
                if max_ns > MAX_JITTER_NS {
                    return Err(InterconnectError::JitterTooLarge(max_ns));
                }
            }
            Toxic::BandwidthDerate { percent } => {
                if percent == 0 || percent > 100 {
                    return Err(InterconnectError::InvalidDeratePercent(percent));
                }
            }
            Toxic::CongestionBurst {
                period_ns,
                burst_ns,
                slowdown,
            } => {
                if period_ns == 0 {
                    return Err(InterconnectError::ZeroPeriod);
                }
                if burst_ns > period_ns {
                    return Err(InterconnectError::WindowExceedsPeriod {
                        window_ns: burst_ns,
                        period_ns,
                    });
                }
                if slowdown == 0 || slowdown > 1000 {
                    return Err(InterconnectError::InvalidSlowdown(slowdown));
                }
            }
            Toxic::Outage { period_ns, down_ns } => {
                if period_ns == 0 {
                    return Err(InterconnectError::ZeroPeriod);
                }
                if down_ns >= period_ns {
                    return Err(InterconnectError::WindowExceedsPeriod {
                        window_ns: down_ns,
                        period_ns,
                    });
                }
            }
        }
        Ok(())
    }
}

/// An ordered chain of [`Toxic`]s applied to every link. The default
/// (empty) spec injects nothing and keeps the interconnect on its
/// untouched fast path.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ToxicSpec {
    toxics: Vec<Toxic>,
}

impl ToxicSpec {
    /// The empty chain: no fault injection.
    pub fn none() -> Self {
        ToxicSpec::default()
    }

    /// Appends `toxic` to the chain (builder style).
    #[must_use]
    pub fn with(mut self, toxic: Toxic) -> Self {
        self.toxics.push(toxic);
        self
    }

    /// The chain, in application order.
    pub fn toxics(&self) -> &[Toxic] {
        &self.toxics
    }

    /// Whether the chain injects nothing.
    pub fn is_empty(&self) -> bool {
        self.toxics.is_empty()
    }

    /// Validates every toxic in the chain.
    pub fn validate(&self) -> Result<(), InterconnectError> {
        for toxic in &self.toxics {
            toxic.validate()?;
        }
        Ok(())
    }
}

/// Runtime state of a [`ToxicSpec`] instantiated over `2 * num_nodes`
/// links (each node has one outgoing and one incoming link). Outgoing
/// link of node `i` has index `i`; incoming has index `num_nodes + i`.
#[derive(Clone, Debug)]
pub struct ToxicChain {
    toxics: Vec<Toxic>,
    links: usize,
    /// One jitter stream per link.
    rngs: Vec<SmallRng>,
    /// Per-(toxic, link) phase offset for scheduled toxics, fixed at
    /// construction; zero for unscheduled toxics.
    phases: Vec<u64>,
}

impl ToxicChain {
    /// Instantiates `spec` over the links of a `num_nodes`-node
    /// interconnect, deriving every per-link stream from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ToxicSpec::validate`].
    pub fn new(spec: &ToxicSpec, num_nodes: usize, seed: u64) -> Self {
        spec.validate().expect("invalid toxic spec");
        let links = num_nodes * 2;
        let root = mix64(seed);
        let rngs = if spec
            .toxics
            .iter()
            .any(|t| matches!(t, Toxic::LatencyJitter { .. }))
        {
            (0..links)
                .map(|link| SmallRng::seed_from_u64(mix64(root ^ (link as u64 + 1))))
                .collect()
        } else {
            Vec::new()
        };
        let mut phases = vec![0u64; spec.toxics.len() * links];
        for (i, toxic) in spec.toxics.iter().enumerate() {
            let period = match *toxic {
                Toxic::CongestionBurst { period_ns, .. } | Toxic::Outage { period_ns, .. } => {
                    period_ns
                }
                _ => continue,
            };
            for link in 0..links {
                phases[i * links + link] =
                    mix64(root ^ (((i as u64 + 1) << 32) | link as u64)) % period;
            }
        }
        ToxicChain {
            toxics: spec.toxics.clone(),
            links,
            rngs,
            phases,
        }
    }

    /// Whether this chain injects nothing.
    pub fn is_empty(&self) -> bool {
        self.toxics.is_empty()
    }

    /// Position of time `t` within `link`'s phase-shifted window of
    /// toxic `i`.
    #[inline]
    fn window_pos(&self, i: usize, link: usize, t: u64, period: u64) -> u64 {
        (t + self.phases[i * self.links + link]) % period
    }

    /// Earliest time at or after `t` when `link` is up: a message that
    /// would start inside an outage window instead starts when the
    /// window ends. Applied per outage toxic, in chain order.
    pub(crate) fn release(&self, link: usize, t: u64) -> u64 {
        let mut t = t;
        for (i, toxic) in self.toxics.iter().enumerate() {
            if let Toxic::Outage { period_ns, down_ns } = *toxic {
                let pos = self.window_pos(i, link, t, period_ns);
                if pos < down_ns {
                    t += down_ns - pos;
                }
            }
        }
        t
    }

    /// Serialization delay of a transfer starting at `t` on `link`,
    /// after bandwidth derating and any active congestion burst.
    pub(crate) fn scaled_ser(&self, link: usize, ser: u64, t: u64) -> u64 {
        let mut s = ser;
        for (i, toxic) in self.toxics.iter().enumerate() {
            match *toxic {
                Toxic::BandwidthDerate { percent } => {
                    s = (s * 100).div_ceil(u64::from(percent));
                }
                Toxic::CongestionBurst {
                    period_ns,
                    burst_ns,
                    slowdown,
                } if self.window_pos(i, link, t, period_ns) < burst_ns => {
                    s *= u64::from(slowdown);
                }
                _ => {}
            }
        }
        s.max(1)
    }

    /// Draws this hop's total latency jitter from `link`'s stream (the
    /// sum over all jitter toxics in the chain).
    pub(crate) fn jitter(&mut self, link: usize) -> u64 {
        let mut j = 0;
        for toxic in &self.toxics {
            if let Toxic::LatencyJitter { max_ns } = *toxic {
                if max_ns > 0 {
                    j += self.rngs[link].gen_range(0..max_ns + 1);
                }
            }
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(spec: ToxicSpec) -> ToxicChain {
        ToxicChain::new(&spec, 4, 0x5EED)
    }

    #[test]
    fn empty_chain_is_identity() {
        let mut c = chain(ToxicSpec::none());
        assert!(c.is_empty());
        assert_eq!(c.release(0, 123), 123);
        assert_eq!(c.scaled_ser(0, 8, 123), 8);
        assert_eq!(c.jitter(0), 0);
    }

    #[test]
    fn derate_stretches_serialization() {
        let c = chain(ToxicSpec::none().with(Toxic::BandwidthDerate { percent: 50 }));
        assert_eq!(c.scaled_ser(0, 8, 0), 16);
        // Rounds up: 3 ns at 90% -> ceil(300/90) = 4.
        let c = chain(ToxicSpec::none().with(Toxic::BandwidthDerate { percent: 90 }));
        assert_eq!(c.scaled_ser(0, 3, 0), 4);
    }

    #[test]
    fn congestion_only_inside_burst_window() {
        let spec = ToxicSpec::none().with(Toxic::CongestionBurst {
            period_ns: 100,
            burst_ns: 10,
            slowdown: 4,
        });
        let c = chain(spec);
        let phase = c.phases[0];
        let in_burst = 100 - phase; // window_pos == 0
        let out_of_burst = in_burst + 10;
        assert_eq!(c.scaled_ser(0, 8, in_burst), 32);
        assert_eq!(c.scaled_ser(0, 8, out_of_burst), 8);
    }

    #[test]
    fn outage_delays_start_to_recovery() {
        let spec = ToxicSpec::none().with(Toxic::Outage {
            period_ns: 1000,
            down_ns: 100,
        });
        let c = chain(spec);
        let phase = c.phases[0];
        let window_start = 1000 - phase;
        // Mid-window start is pushed to the end of the window.
        assert_eq!(c.release(0, window_start + 40), window_start + 100);
        // Starts outside the window are untouched.
        assert_eq!(c.release(0, window_start + 100), window_start + 100);
    }

    #[test]
    fn per_link_phases_differ() {
        let spec = ToxicSpec::none().with(Toxic::Outage {
            period_ns: 10_000,
            down_ns: 100,
        });
        let c = chain(spec);
        assert!(
            (1..c.links).any(|l| c.phases[l] != c.phases[0]),
            "all links share one outage phase"
        );
    }

    #[test]
    fn jitter_streams_are_seeded_per_link() {
        let spec = ToxicSpec::none().with(Toxic::LatencyJitter { max_ns: 1_000_000 });
        let mut a = ToxicChain::new(&spec, 4, 7);
        let mut b = ToxicChain::new(&spec, 4, 7);
        assert_eq!(a.jitter(0), b.jitter(0), "same seed, same draw");
        let mut c = ToxicChain::new(&spec, 4, 8);
        let draws_a: Vec<u64> = (0..16).map(|_| a.jitter(1)).collect();
        let draws_c: Vec<u64> = (0..16).map(|_| c.jitter(1)).collect();
        assert_ne!(draws_a, draws_c, "different seeds, different streams");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Toxic::BandwidthDerate { percent: 0 }.validate().is_err());
        assert!(Toxic::BandwidthDerate { percent: 101 }.validate().is_err());
        assert!(Toxic::Outage {
            period_ns: 100,
            down_ns: 100
        }
        .validate()
        .is_err());
        assert!(Toxic::CongestionBurst {
            period_ns: 0,
            burst_ns: 0,
            slowdown: 2
        }
        .validate()
        .is_err());
        assert!(Toxic::CongestionBurst {
            period_ns: 100,
            burst_ns: 10,
            slowdown: 0
        }
        .validate()
        .is_err());
        assert!(Toxic::LatencyJitter {
            max_ns: MAX_JITTER_NS + 1
        }
        .validate()
        .is_err());
        assert!(ToxicSpec::none()
            .with(Toxic::BandwidthDerate { percent: 50 })
            .validate()
            .is_ok());
    }
}
