//! The seed crossbar send path, kept verbatim as the semantic reference.
//!
//! [`ReferenceCrossbar`] preserves the original [`Crossbar`] hot path
//! byte for byte in behavior: serialization delay recomputed from
//! floats on every send and arrival times heap-allocated into a fresh
//! `Vec` per delivery. It is the oracle the property tests compare the
//! allocation-free crossbar against, and the baseline `repro
//! hotpath-bench` records `BENCH_hotpath.json` speedups over — one
//! shared copy, so the benchmark and the equivalence tests can never
//! drift onto different models.
//!
//! It models timing only: traffic statistics are the measured
//! implementation's concern.
//!
//! [`Crossbar`]: crate::Crossbar

use dsp_types::{MessageClass, NodeId};

use crate::crossbar::{InterconnectConfig, Message};

/// `Vec`-returning, float-per-send crossbar with the seed algorithm.
///
/// See [`Crossbar`](crate::Crossbar) for the timing model; the two are
/// byte-identical on every trace (pinned by property tests).
#[derive(Clone, Debug)]
pub struct ReferenceCrossbar {
    config: InterconnectConfig,
    src_free_at: Vec<u64>,
    dst_free_at: Vec<u64>,
    last_order_time: u64,
}

impl ReferenceCrossbar {
    /// Creates a reference crossbar for `num_nodes` nodes.
    pub fn new(config: InterconnectConfig, num_nodes: usize) -> Self {
        ReferenceCrossbar {
            config,
            src_free_at: vec![0; num_nodes],
            dst_free_at: vec![0; num_nodes],
            last_order_time: 0,
        }
    }

    /// Serialization delay of `class`-sized messages, recomputed from
    /// floats on every call exactly as the seed did.
    pub fn serialization_ns(&self, class: MessageClass) -> u64 {
        ((class.bytes() as f64 / self.config.link_bytes_per_ns).ceil() as u64).max(1)
    }

    /// Injects `msg` at time `now`; returns the ordering time and a
    /// freshly allocated arrival list, exactly as the seed `send` did.
    pub fn send<const W: usize>(
        &mut self,
        now: u64,
        msg: &Message<W>,
    ) -> (u64, Vec<(NodeId, u64)>) {
        let ser = self.serialization_ns(msg.class);
        let half = self.config.traversal_ns / 2;
        let start = now.max(self.src_free_at[msg.src.index()]);
        self.src_free_at[msg.src.index()] = start + ser;
        let order_time = (start + ser + half).max(self.last_order_time);
        self.last_order_time = order_time;
        let mut arrivals = Vec::with_capacity(msg.dests.len());
        for dest in msg.dests {
            let d_start = order_time.max(self.dst_free_at[dest.index()]);
            self.dst_free_at[dest.index()] = d_start + ser;
            arrivals.push((dest, d_start + ser + half));
        }
        (order_time, arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::DestSet;

    #[test]
    fn reference_matches_documented_seed_timing() {
        let mut x = ReferenceCrossbar::new(InterconnectConfig::isca03(), 16);
        let (order, arrivals) = x.send(
            0,
            &Message::<4> {
                src: NodeId::new(0),
                dests: DestSet::single(NodeId::new(5)),
                class: MessageClass::Request,
            },
        );
        // 8B at 10B/ns -> 1ns serialization; 25 + 25 traversal halves.
        assert_eq!(order, 26);
        assert_eq!(arrivals, vec![(NodeId::new(5), 52)]);
    }
}
