//! Property-based tests of the crossbar timing model.

use proptest::prelude::*;

use dsp_interconnect::{Crossbar, InterconnectConfig, Message};
use dsp_types::{DestSet, MessageClass, NodeId};

const NODES: usize = 16;

#[derive(Clone, Debug)]
struct Send {
    src: usize,
    dest_mask: u16,
    class_idx: u8,
    gap: u64,
}

fn class_of(idx: u8) -> MessageClass {
    match idx % 6 {
        0 => MessageClass::Request,
        1 => MessageClass::Forward,
        2 => MessageClass::Retry,
        3 => MessageClass::DataResponse,
        4 => MessageClass::Control,
        _ => MessageClass::Writeback,
    }
}

fn sends() -> impl Strategy<Value = Vec<Send>> {
    proptest::collection::vec(
        (0usize..NODES, any::<u16>(), any::<u8>(), 0u64..100).prop_map(
            |(src, dest_mask, class_idx, gap)| Send {
                src,
                dest_mask,
                class_idx,
                gap,
            },
        ),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Ordering-point times are monotone in send order (total order),
    /// and every arrival happens strictly after the ordering point.
    #[test]
    fn total_order_and_causality(ops in sends()) {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), NODES);
        let mut now = 0u64;
        let mut last_order = 0u64;
        for op in &ops {
            now += op.gap;
            let msg = Message {
                src: NodeId::new(op.src),
                dests: DestSet::from_bits(op.dest_mask as u64),
                class: class_of(op.class_idx),
            };
            let d = xbar.send(now, &msg);
            prop_assert!(d.order_time >= last_order, "ordering point went backwards");
            prop_assert!(d.order_time > now, "ordering cannot precede injection");
            last_order = d.order_time;
            for (_, t) in &d.arrivals {
                prop_assert!(*t > d.order_time, "arrival before ordering");
            }
        }
    }

    /// A node's incoming link delivers at most one message per
    /// serialization window: consecutive arrivals at the same node are
    /// spaced by at least the smaller message's serialization time.
    #[test]
    fn per_link_delivery_spacing(ops in sends()) {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), NODES);
        let mut now = 0u64;
        let mut arrivals_per_node: Vec<Vec<(u64, u64)>> = vec![Vec::new(); NODES];
        for op in &ops {
            now += op.gap;
            let class = class_of(op.class_idx);
            let ser = xbar.serialization_ns(class);
            let msg = Message {
                src: NodeId::new(op.src),
                dests: DestSet::from_bits(op.dest_mask as u64),
                class,
            };
            for (node, t) in xbar.send(now, &msg).arrivals {
                arrivals_per_node[node.index()].push((t, ser));
            }
        }
        for node in arrivals_per_node {
            let mut sorted = node.clone();
            sorted.sort_unstable();
            for pair in sorted.windows(2) {
                let ((t1, _), (t2, s2)) = (pair[0], pair[1]);
                // The later arrival needed its own serialization slot.
                prop_assert!(t2 >= t1 + s2.min(pair[0].1), "link overcommitted: {t1} then {t2}");
            }
        }
    }

    /// Traffic accounting matches what was sent: deliveries equal the
    /// destination-set sizes and bytes equal deliveries times the class
    /// size.
    #[test]
    fn traffic_accounting_is_exact(ops in sends()) {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), NODES);
        let mut expect_deliveries = 0u64;
        let mut expect_bytes = 0u64;
        let mut now = 0;
        for op in &ops {
            now += op.gap;
            let class = class_of(op.class_idx);
            let dests = DestSet::from_bits(op.dest_mask as u64);
            expect_deliveries += dests.len() as u64;
            expect_bytes += dests.len() as u64 * class.bytes();
            xbar.send(now, &Message { src: NodeId::new(op.src), dests, class });
        }
        let stats = xbar.stats();
        let total_deliveries: u64 = [
            MessageClass::Request,
            MessageClass::Forward,
            MessageClass::Retry,
            MessageClass::DataResponse,
            MessageClass::Control,
            MessageClass::Writeback,
        ]
        .iter()
        .map(|c| stats.class(*c).deliveries)
        .sum();
        prop_assert_eq!(total_deliveries, expect_deliveries);
        prop_assert_eq!(stats.total_bytes(), expect_bytes);
        prop_assert_eq!(stats.total_messages(), ops.len() as u64);
    }

    /// Uncontended single messages always arrive within serialization +
    /// traversal of their injection.
    #[test]
    fn uncontended_latency_bound(src in 0usize..NODES, dst in 0usize..NODES, class_idx in 0u8..6) {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), NODES);
        let class = class_of(class_idx);
        let msg = Message {
            src: NodeId::new(src),
            dests: DestSet::single(NodeId::new(dst)),
            class,
        };
        let d = xbar.send(1_000, &msg);
        let bound = 1_000 + 2 * xbar.serialization_ns(class) + 50;
        prop_assert!(d.arrivals[0].1 <= bound, "{} > {bound}", d.arrivals[0].1);
    }
}
