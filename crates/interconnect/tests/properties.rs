//! Property-based tests of the crossbar timing model and the
//! fault-injection topology layer wrapped around it.

use proptest::prelude::*;

use dsp_interconnect::{
    Crossbar, InterconnectConfig, Message, ReferenceCrossbar, Topology, TopologySpec, Toxic,
    ToxicSpec,
};
use dsp_types::{DestSet, MessageClass, NodeId};

const NODES: usize = 16;

/// Renders one delivery as a text record, the unit of byte-identical
/// comparison between the seed model and the current crossbar.
fn render_delivery(order_time: u64, arrivals: &[(NodeId, u64)]) -> String {
    let mut line = format!("@{order_time}:");
    for (node, t) in arrivals {
        line.push_str(&format!(" {node}={t}"));
    }
    line
}

#[derive(Clone, Debug)]
struct Send {
    src: usize,
    dest_mask: u16,
    class_idx: u8,
    gap: u64,
}

fn class_of(idx: u8) -> MessageClass {
    match idx % 6 {
        0 => MessageClass::Request,
        1 => MessageClass::Forward,
        2 => MessageClass::Retry,
        3 => MessageClass::DataResponse,
        4 => MessageClass::Control,
        _ => MessageClass::Writeback,
    }
}

fn sends() -> impl Strategy<Value = Vec<Send>> {
    proptest::collection::vec(
        (0usize..NODES, any::<u16>(), any::<u8>(), 0u64..100).prop_map(
            |(src, dest_mask, class_idx, gap)| Send {
                src,
                dest_mask,
                class_idx,
                gap,
            },
        ),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Ordering-point times are monotone in send order (total order),
    /// and every arrival happens strictly after the ordering point.
    #[test]
    fn total_order_and_causality(ops in sends()) {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), NODES);
        let mut now = 0u64;
        let mut last_order = 0u64;
        for op in &ops {
            now += op.gap;
            let msg: Message = Message {
                src: NodeId::new(op.src),
                dests: DestSet::from_bits(op.dest_mask as u64),
                class: class_of(op.class_idx),
            };
            let d = xbar.send(now, &msg);
            prop_assert!(d.order_time >= last_order, "ordering point went backwards");
            prop_assert!(d.order_time > now, "ordering cannot precede injection");
            last_order = d.order_time;
            for (_, t) in &d.arrivals {
                prop_assert!(*t > d.order_time, "arrival before ordering");
            }
        }
    }

    /// A node's incoming link delivers at most one message per
    /// serialization window: consecutive arrivals at the same node are
    /// spaced by at least the smaller message's serialization time.
    #[test]
    fn per_link_delivery_spacing(ops in sends()) {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), NODES);
        let mut now = 0u64;
        let mut arrivals_per_node: Vec<Vec<(u64, u64)>> = vec![Vec::new(); NODES];
        for op in &ops {
            now += op.gap;
            let class = class_of(op.class_idx);
            let ser = xbar.serialization_ns(class);
            let msg: Message = Message {
                src: NodeId::new(op.src),
                dests: DestSet::from_bits(op.dest_mask as u64),
                class,
            };
            for (node, t) in xbar.send(now, &msg).arrivals {
                arrivals_per_node[node.index()].push((t, ser));
            }
        }
        for node in arrivals_per_node {
            let mut sorted = node.clone();
            sorted.sort_unstable();
            for pair in sorted.windows(2) {
                let ((t1, _), (t2, s2)) = (pair[0], pair[1]);
                // The later arrival needed its own serialization slot.
                prop_assert!(t2 >= t1 + s2.min(pair[0].1), "link overcommitted: {t1} then {t2}");
            }
        }
    }

    /// Traffic accounting matches what was sent: deliveries equal the
    /// destination-set sizes and bytes equal deliveries times the class
    /// size.
    #[test]
    fn traffic_accounting_is_exact(ops in sends()) {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), NODES);
        let mut expect_deliveries = 0u64;
        let mut expect_bytes = 0u64;
        let mut now = 0;
        for op in &ops {
            now += op.gap;
            let class = class_of(op.class_idx);
            let dests = DestSet::from_bits(op.dest_mask as u64);
            expect_deliveries += dests.len() as u64;
            expect_bytes += dests.len() as u64 * class.bytes();
            xbar.send(now, &Message::<4> { src: NodeId::new(op.src), dests, class });
        }
        let stats = xbar.stats();
        let total_deliveries: u64 = [
            MessageClass::Request,
            MessageClass::Forward,
            MessageClass::Retry,
            MessageClass::DataResponse,
            MessageClass::Control,
            MessageClass::Writeback,
        ]
        .iter()
        .map(|c| stats.class(*c).deliveries)
        .sum();
        prop_assert_eq!(total_deliveries, expect_deliveries);
        prop_assert_eq!(stats.total_bytes(), expect_bytes);
        prop_assert_eq!(stats.total_messages(), ops.len() as u64);
    }

    /// The refactored crossbar (precomputed serialization, inline
    /// arrival buffer) is byte-identical to the seed model on arbitrary
    /// traces: same ordering times, same arrivals in the same order,
    /// under non-default bandwidths too (exercising the float-`ceil`
    /// precomputation).
    #[test]
    fn deliveries_match_seed_model(ops in sends(), bw_tenths in 1u32..200) {
        let config = InterconnectConfig {
            link_bytes_per_ns: bw_tenths as f64 / 10.0,
            traversal_ns: 50,
        };
        let mut xbar = Crossbar::new(config, NODES);
        let mut seed = ReferenceCrossbar::new(config, NODES);
        let mut now = 0u64;
        for op in &ops {
            now += op.gap;
            let class = class_of(op.class_idx);
            prop_assert_eq!(xbar.serialization_ns(class), seed.serialization_ns(class));
            let msg: Message = Message {
                src: NodeId::new(op.src),
                dests: DestSet::from_bits(op.dest_mask as u64),
                class,
            };
            let d = xbar.send(now, &msg);
            let (seed_order, seed_arrivals) = seed.send(now, &msg);
            prop_assert_eq!(
                render_delivery(d.order_time, &d.arrivals),
                render_delivery(seed_order, &seed_arrivals)
            );
        }
    }

    /// Uncontended single messages always arrive within serialization +
    /// traversal of their injection.
    #[test]
    fn uncontended_latency_bound(src in 0usize..NODES, dst in 0usize..NODES, class_idx in 0u8..6) {
        let mut xbar = Crossbar::new(InterconnectConfig::isca03(), NODES);
        let class = class_of(class_idx);
        let msg: Message = Message {
            src: NodeId::new(src),
            dests: DestSet::single(NodeId::new(dst)),
            class,
        };
        let d = xbar.send(1_000, &msg);
        let bound = 1_000 + 2 * xbar.serialization_ns(class) + 50;
        prop_assert!(d.arrivals[0].1 <= bound, "{} > {bound}", d.arrivals[0].1);
    }
}

/// A random (possibly empty) toxic chain: each fault model is present
/// or absent independently, with parameters drawn from their valid
/// ranges (derate ≥ 50% and burst ≤ period keep every chain
/// constructible).
fn toxic_chain() -> impl Strategy<Value = ToxicSpec> {
    (
        proptest::option::of(1u64..60),
        proptest::option::of(50u32..100),
        proptest::option::of((1_000u64..20_000, 100u64..900, 2u32..8)),
        proptest::option::of((5_000u64..50_000, 100u64..4_000)),
    )
        .prop_map(|(jitter, derate, congestion, outage)| {
            let mut spec = ToxicSpec::none();
            if let Some(max_ns) = jitter {
                spec = spec.with(Toxic::LatencyJitter { max_ns });
            }
            if let Some(percent) = derate {
                spec = spec.with(Toxic::BandwidthDerate { percent });
            }
            if let Some((period_ns, burst_ns, slowdown)) = congestion {
                spec = spec.with(Toxic::CongestionBurst {
                    period_ns,
                    burst_ns,
                    slowdown,
                });
            }
            if let Some((period_ns, down_ns)) = outage {
                spec = spec.with(Toxic::Outage { period_ns, down_ns });
            }
            spec
        })
}

/// Either network shape, with fixed mesh parameters (the property
/// tests care about the routing structure, not the constants).
fn topology() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        Just(TopologySpec::Crossbar),
        Just(TopologySpec::Mesh2d {
            cols: 4,
            link_ns: 10,
            hop_ns: 5,
        }),
    ]
}

/// Replays `ops` through a fresh [`Topology`] and renders every
/// delivery, asserting the per-link conservation ledger on the way out.
fn run_stream<const W: usize>(
    topo_spec: &TopologySpec,
    toxics: &ToxicSpec,
    seed: u64,
    ops: &[Send],
) -> String {
    let mut topo = Topology::new(InterconnectConfig::isca03(), NODES, topo_spec, toxics, seed);
    let mut now = 0u64;
    let mut out = String::new();
    for op in ops {
        now += op.gap;
        let msg: Message<W> = Message {
            src: NodeId::new(op.src),
            dests: DestSet::from_bits(op.dest_mask as u64),
            class: class_of(op.class_idx),
        };
        let d = topo.send(now, &msg);
        out.push_str(&render_delivery(d.order_time, &d.arrivals));
        out.push('\n');
    }
    topo.assert_conserved();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fault injection is deterministic under seed — re-running the
    /// same trace through a fresh topology with the same seed yields a
    /// byte-identical delivery stream — and the compile-time set width
    /// is a pure representation: `Message<1>` and `Message<4>` produce
    /// the same stream (destination masks fit 16 bits, so both widths
    /// express every set).
    #[test]
    fn toxic_streams_are_seeded_and_width_invariant(
        ops in sends(),
        topo in topology(),
        toxics in toxic_chain(),
        seed in any::<u64>(),
    ) {
        let first = run_stream::<1>(&topo, &toxics, seed, &ops);
        let again = run_stream::<1>(&topo, &toxics, seed, &ops);
        prop_assert_eq!(&first, &again, "same seed must replay byte-identically");
        let wide = run_stream::<4>(&topo, &toxics, seed, &ops);
        prop_assert_eq!(first, wide, "set width changed delivery timing");
    }

    /// No toxic chain reorders a destination link: arrivals at each
    /// node are monotone in send order even when jitter, congestion,
    /// and outages stretch individual deliveries — faults delay
    /// messages, they never overtake them.
    #[test]
    fn toxics_preserve_per_destination_fifo(
        ops in sends(),
        topo in topology(),
        toxics in toxic_chain(),
        seed in any::<u64>(),
    ) {
        let mut net = Topology::new(InterconnectConfig::isca03(), NODES, &topo, &toxics, seed);
        let mut now = 0u64;
        let mut last = [0u64; NODES];
        for op in &ops {
            now += op.gap;
            let msg: Message = Message {
                src: NodeId::new(op.src),
                dests: DestSet::from_bits(op.dest_mask as u64),
                class: class_of(op.class_idx),
            };
            for (node, t) in &net.send(now, &msg).arrivals {
                prop_assert!(
                    *t >= last[node.index()],
                    "link to {node} reordered: {t} after {}",
                    last[node.index()]
                );
                last[node.index()] = *t;
            }
        }
        net.assert_conserved();
    }

    /// A mesh whose hop latencies sum to the crossbar's 50 ns traversal
    /// (25 ns injection half + 0 ns per hop on each side) is the
    /// crossbar: the modeled path with uniform halves must be
    /// byte-identical to the direct fast path, whatever the aspect
    /// ratio of the grid.
    #[test]
    fn flat_mesh_is_the_crossbar(ops in sends(), cols in 1u32..9, seed in any::<u64>()) {
        let mesh = TopologySpec::Mesh2d { cols, link_ns: 25, hop_ns: 0 };
        let direct = run_stream::<1>(&TopologySpec::Crossbar, &ToxicSpec::none(), seed, &ops);
        let modeled = run_stream::<1>(&mesh, &ToxicSpec::none(), seed, &ops);
        prop_assert_eq!(direct, modeled, "degenerate mesh diverged from the crossbar");
    }
}

/// A fixed golden trace, rendered and pinned byte for byte: a unicast
/// request, a contended broadcast, a data response on a busy link, and
/// an empty destination set.
#[test]
fn golden_trace_is_pinned() {
    let mut xbar = Crossbar::new(InterconnectConfig::isca03(), 4);
    let steps = [
        (0u64, 0usize, 0b0010u64, MessageClass::Request),
        (5, 1, 0b1111, MessageClass::Request),
        (6, 0, 0b0010, MessageClass::DataResponse),
        (6, 2, 0b0000, MessageClass::Control),
        (7, 3, 0b0101, MessageClass::Writeback),
    ];
    let mut rendered = String::new();
    for (now, src, mask, class) in steps {
        let d = xbar.send(
            now,
            &Message::<4> {
                src: NodeId::new(src),
                dests: DestSet::from_bits(mask),
                class,
            },
        );
        rendered.push_str(&render_delivery(d.order_time, &d.arrivals));
        rendered.push('\n');
    }
    // Recorded from the seed implementation (ReferenceCrossbar
    // reproduces it; see deliveries_match_seed_model for the general
    // case).
    let mut seed = ReferenceCrossbar::new(InterconnectConfig::isca03(), 4);
    let mut expected = String::new();
    for (now, src, mask, class) in steps {
        let (order, arrivals) = seed.send(
            now,
            &Message::<4> {
                src: NodeId::new(src),
                dests: DestSet::from_bits(mask),
                class,
            },
        );
        expected.push_str(&render_delivery(order, &arrivals));
        expected.push('\n');
    }
    assert_eq!(rendered, expected);
    assert_eq!(
        rendered,
        "@26: P1=52\n\
         @31: P0=57 P1=57 P2=57 P3=57\n\
         @39: P1=72\n\
         @39:\n\
         @40: P0=73 P2=73\n"
    );
}
