//! `#[derive(Serialize, Deserialize)]` for the local serde stub.
//!
//! Implemented without `syn`/`quote`: the input item is parsed with a
//! small hand-rolled walker over [`proc_macro::TokenStream`] and the
//! impls are emitted as formatted source text. Supported shapes cover
//! everything this workspace derives:
//!
//! * structs with named fields (declaration-order object),
//! * newtype and multi-field tuple structs (newtypes serialize
//!   transparently, matching serde_json),
//! * unit structs,
//! * enums with unit / tuple / struct variants (external tagging),
//! * const and type generic parameters.
//!
//! `#[serde(transparent)]` is accepted; newtypes already serialize
//! transparently so it requires no special handling. Other `#[serde]`
//! attributes are rejected with a compile error rather than silently
//! ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape, // Unit / Named / Tuple only
}

struct Input {
    name: String,
    /// Verbatim generic parameter list including bounds, e.g.
    /// `const BITS: u32` — without the outer angle brackets.
    generics: String,
    /// Generic argument names for the self type, e.g. `BITS`.
    generic_args: Vec<String>,
    /// Names of type (not const) parameters, which need trait bounds.
    type_params: Vec<String>,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input).map(|item| generate(&item, mode)) {
        Ok(code) => code
            .parse()
            .unwrap_or_else(|e| error(&format!("serde_derive produced invalid code: {e}"))),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});").parse().unwrap()
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Leading attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    check_serde_attr(&g.to_string())?;
                    i += 2;
                } else {
                    return Err("stray `#` in item".into());
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected item name, found `{other}`")),
    };
    i += 1;

    // Generics.
    let mut generics = String::new();
    let mut generic_args = Vec::new();
    let mut type_params = Vec::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 0usize;
        let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
        loop {
            let tok = tokens
                .get(i)
                .ok_or_else(|| "unterminated generic parameter list".to_string())?;
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                    depth -= 1;
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    params.push(Vec::new());
                    i += 1;
                    continue;
                }
                _ => {}
            }
            params.last_mut().unwrap().push(tok.clone());
            i += 1;
        }
        let rendered: Vec<String> = params
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| {
                // Strip a parameter default (`= 4` in `const W: usize =
                // 4`): impl headers must not restate defaults. Only a
                // top-level `=` starts a default; `=` nested inside
                // angle brackets (`Iterator<Item = u64>`) is a bound.
                let mut depth = 0usize;
                let mut cut = p.len();
                for (j, t) in p.iter().enumerate() {
                    match t {
                        TokenTree::Punct(q) if q.as_char() == '<' => depth += 1,
                        TokenTree::Punct(q) if q.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(q) if q.as_char() == '=' && depth == 0 => {
                            cut = j;
                            break;
                        }
                        _ => {}
                    }
                }
                p[..cut]
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        generics = rendered.join(", ");
        for param in params.iter().filter(|p| !p.is_empty()) {
            match &param[0] {
                TokenTree::Ident(id) if id.to_string() == "const" => {
                    if let Some(TokenTree::Ident(n)) = param.get(1) {
                        generic_args.push(n.to_string());
                    } else {
                        return Err("malformed const generic parameter".into());
                    }
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    return Err("lifetime parameters are not supported by the serde stub".into());
                }
                TokenTree::Ident(id) => {
                    generic_args.push(id.to_string());
                    type_params.push(id.to_string());
                }
                other => return Err(format!("unsupported generic parameter `{other}`")),
            }
        }
    }

    // Optional where clause: skip to the body group / semicolon.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("enum without a body".into()),
        }
    };

    Ok(Input {
        name,
        generics,
        generic_args,
        type_params,
        shape,
    })
}

/// Rejects `#[serde(...)]` attributes this stub does not implement.
fn check_serde_attr(attr: &str) -> Result<(), String> {
    let inner = attr.trim_start_matches('[').trim_end_matches(']');
    if let Some(args) = inner.strip_prefix("serde") {
        let args = args.trim();
        if !args.is_empty() && args != "(transparent)" {
            return Err(format!(
                "the serde stub supports only #[serde(transparent)], found #{inner}"
            ));
        }
    }
    Ok(())
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                check_serde_attr(&g.to_string())?;
                i += 2;
            } else {
                return Err("stray `#` in field list".into());
            }
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("expected field name, found `{tok}`"));
        };
        fields.push(id.to_string());
        i += 1;
        if !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!(
                "expected `:` after field `{}`",
                fields.last().unwrap()
            ));
        }
        i += 1;
        // Skip the type: everything to the next comma at angle depth 0.
        let mut depth = 0usize;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut fields = 0usize;
    let mut any = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => any = true,
        }
    }
    if any {
        fields + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                check_serde_attr(&g.to_string())?;
                i += 2;
            } else {
                return Err("stray `#` in variant list".into());
            }
        }
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("expected variant name, found `{tok}`"));
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn generate(item: &Input, mode: Mode) -> String {
    let name = &item.name;
    let impl_generics = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics)
    };
    let self_ty = if item.generic_args.is_empty() {
        name.clone()
    } else {
        format!("{name}<{}>", item.generic_args.join(", "))
    };
    let bound = match mode {
        Mode::Serialize => "::serde::Serialize",
        Mode::Deserialize => "::serde::Deserialize",
    };
    let where_clause = if item.type_params.is_empty() {
        String::new()
    } else {
        let bounds: Vec<String> = item
            .type_params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect();
        format!("where {}", bounds.join(", "))
    };

    let body = match mode {
        Mode::Serialize => gen_serialize_body(name, &item.shape),
        Mode::Deserialize => gen_deserialize_body(name, &item.shape),
    };
    match mode {
        Mode::Serialize => format!(
            "#[automatically_derived]\n\
             impl {impl_generics} ::serde::Serialize for {self_ty} {where_clause} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
             }}"
        ),
        Mode::Deserialize => format!(
            "#[automatically_derived]\n\
             impl {impl_generics} ::serde::Deserialize for {self_ty} {where_clause} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
             }}"
        ),
    }
}

/// Renders an object expression from `(key, value-expression)` pairs.
fn object_expr(pairs: &[(String, String)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from({k:?}), {v})"))
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

fn gen_serialize_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".into(),
        Shape::Named(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })
                .collect();
            object_expr(&pairs)
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".into(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push(format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?}))"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push(format!(
                            "{name}::{vname}({}) => {}",
                            binds.join(", "),
                            object_expr(&[(vname.clone(), inner)])
                        ));
                    }
                    Shape::Named(fields) => {
                        let pairs: Vec<(String, String)> = fields
                            .iter()
                            .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        arms.push(format!(
                            "{name}::{vname} {{ {} }} => {}",
                            fields.join(", "),
                            object_expr(&[(vname.clone(), object_expr(&pairs))])
                        ));
                    }
                    Shape::Enum(_) => unreachable!("variant cannot be an enum"),
                }
            }
            format!("match self {{\n{}\n}}", arms.join(",\n"))
        }
    }
}

fn gen_deserialize_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field({f:?})?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                         ::serde::de::Error::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) => ::std::result::Result::Ok({name}({})),\n\
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                         ::std::format!(\"expected array, found {{}}\", __other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname})"
                    )),
                    Shape::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__inner)?))"
                            )
                        } else {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                                         ::serde::de::Error::custom(\"variant tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "match __inner {{\n\
                                     ::serde::Value::Array(__items) => \
                                         ::std::result::Result::Ok({name}::{vname}({})),\n\
                                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                                         ::std::format!(\"expected array for variant {vname}, found {{}}\", \
                                         __other.kind()))),\n\
                                 }}",
                                inits.join(", ")
                            )
                        };
                        tagged_arms.push(format!("{vname:?} => {{ {expr} }}"));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__inner.field({f:?})?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                            inits.join(", ")
                        ));
                    }
                    Shape::Enum(_) => unreachable!("variant cannot be an enum"),
                }
            }
            unit_arms.push(format!(
                "__other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown unit variant `{{__other}}` for {name}\")))"
            ));
            tagged_arms.push(format!(
                "__other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for {name}\")))"
            ));
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n{}\n}},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n{}\n}}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                         ::std::format!(\"expected enum value for {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms.join(",\n"),
                tagged_arms.join(",\n")
            )
        }
    }
}
