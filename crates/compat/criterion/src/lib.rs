//! Offline stand-in for `criterion`.
//!
//! Benchmarks run for real — each routine is warmed once, then timed
//! for up to `sample_size` iterations or `measurement_time`, whichever
//! ends first — and a one-line mean/min is printed per benchmark. No
//! statistics, plots, or baselines; the point is that `cargo bench`
//! compiles, runs, and reports useful wall-clock numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Work-per-iteration declaration; recorded to derive a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up iteration outside the measurement.
        black_box(routine());
        let start = Instant::now();
        let mut done = 0u64;
        while done < self.iters {
            black_box(routine());
            done += 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = done.max(1);
    }

    /// Times `routine`, excluding a fresh `setup` before every call.
    pub fn iter_with_setup<S, O, SF, R>(&mut self, mut setup: SF, mut routine: R)
    where
        SF: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let began = Instant::now();
        let mut done = 0u64;
        while done < self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            done += 1;
            if began.elapsed() > self.budget {
                break;
            }
        }
        self.elapsed = measured;
        self.iters = done.max(1);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations to attempt.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; warm-up is a single call here.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the time spent timing one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration work, reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
            budget: self.measurement_time,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / mean),
            Throughput::Bytes(n) => format!(", {:.0} B/s", n as f64 / mean),
        });
        println!(
            "bench {}/{}: mean {:.3} ms over {} iters{}",
            self.name,
            id.id,
            mean * 1e3,
            bencher.iters,
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("criterion");
        group.bench_function(name, f);
        self
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| black_box(1u64 + 1));
        });
        group.bench_function("with_setup", |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| black_box(v.len()));
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
