//! Offline stand-in for `serde_json`: JSON text to and from the serde
//! stub's [`Value`] tree.
//!
//! Numbers round-trip exactly: integers are emitted as-is and floats
//! with Rust's shortest round-trip formatting; parsing uses
//! `str::parse`, which is correctly rounded.

use std::fmt;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or a shape
/// mismatch with `T`.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    level: usize,
) -> Result<(), Error> {
    let (open_sep, close_sep, item_sep, pad, pad_close);
    match indent {
        Some(unit) => {
            open_sep = "\n";
            close_sep = "\n";
            item_sep = ",\n";
            pad = unit.repeat(level + 1);
            pad_close = unit.repeat(level);
        }
        None => {
            open_sep = "";
            close_sep = "";
            item_sep = ",";
            pad = String::new();
            pad_close = String::new();
        }
    }
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // {:?} gives the shortest representation that round-trips,
            // always with a decimal point or exponent.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            out.push_str(open_sep);
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(item_sep);
                }
                out.push_str(&pad);
                write_value(out, item, indent, level + 1)?;
            }
            out.push_str(close_sep);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            out.push_str(open_sep);
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(item_sep);
                }
                out.push_str(&pad);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            out.push_str(close_sep);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not reconstructed; the
                            // writer never emits them for BMP text.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("expected number at offset {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(neg) = text.strip_prefix('-') {
            neg.parse::<u64>()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
                .and_then(|v| {
                    i64::try_from(v)
                        .map(|v| Value::Int(-v))
                        .map_err(|_| Error::new(format!("number `{text}` out of range")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn float_exact_round_trip() {
        for f in [
            0.1,
            1e-12,
            std::f64::consts::PI,
            1e300,
            -0.0,
            2.0f64.powi(-40),
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text}");
        }
    }

    #[test]
    fn vec_and_nested() {
        let v = vec![vec![1u64, 2], vec![3]];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&text).unwrap(), v);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = vec![1u64, 2, 3];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("{not json").is_err());
        assert!(from_str::<u64>("42 extra").is_err());
        assert!(from_str::<u64>("\"str\"").is_err());
    }

    #[test]
    fn unicode_strings() {
        let s = "héllo ✓ 日本語".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }
}
