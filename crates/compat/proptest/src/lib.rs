//! Offline stand-in for `proptest`.
//!
//! Provides the surface this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`], [`any`],
//! range/tuple/[`Just`]/`prop_map` strategies, [`collection::vec`],
//! [`option::of`], and [`test_runner::ProptestConfig`]. Cases are
//! generated from a seed derived from the test name, so runs are
//! deterministic; failing inputs are *not* shrunk — the panic message
//! simply reports the case number.
//!
//! [`any`]: arbitrary::any
//! [`Just`]: strategy::Just
//! [`proptest!`]: crate::proptest

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, UniformInt};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies of one value type.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    let lo = <$t as UniformInt>::to_u64(*self.start());
                    let hi = <$t as UniformInt>::to_u64(*self.end());
                    assert!(lo <= hi, "cannot sample empty inclusive range");
                    if lo == 0 && hi == u64::MAX {
                        return <$t as UniformInt>::from_u64(rng.gen());
                    }
                    <$t as UniformInt>::from_u64(rng.gen_range(lo..hi + 1))
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            // The end itself has measure zero; sampling the half-open
            // span is indistinguishable for these tests.
            self.start() + rng.gen::<f64>() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($t:ident . $idx:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<u64>() as i64
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length distributions accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(*self.start()..self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Option strategies.
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Option` of `inner`, `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Test-runner configuration and deterministic seeding.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test generator, seeded from the test name
    /// (FNV-1a) so every run replays the same cases.
    pub fn rng_for(test_name: &str) -> SmallRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SmallRng::seed_from_u64(hash)
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __run = || {
                    $(let $arg = ($strat).generate(&mut __rng);)*
                    $body
                };
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {}/{} of {} failed (deterministic seed; rerun reproduces it)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::rng_for("ranges");
        for _ in 0..1_000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::test_runner::rng_for("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(a in 0u64..100, b in any::<bool>(), v in crate::collection::vec(0u8..4, 1..5)) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
