//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng`],
//! and [`rngs::SmallRng`] (xoshiro256++ seeded via splitmix64, so
//! streams are deterministic across platforms).

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; only the `u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (or `[0, 1)` for
/// floats), mirroring rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Converts to u64 for range arithmetic.
    fn to_u64(self) -> u64;
    /// Converts back from u64.
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Main user-facing trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "cannot sample empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); span is tiny relative to
        // 2^64 in all uses here, so the rejection loop rarely iterates.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            let (hi128, lo128) = {
                let wide = (v as u128) * (span as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo128 <= zone {
                return T::from_u64(lo + hi128);
            }
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
}

/// A small, fast, deterministic generator (xoshiro256++).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 stream expansion, as rand_xoshiro does.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
