//! Offline stand-in for `serde`.
//!
//! Rather than serde's visitor architecture, this stub serializes
//! through an owned JSON-like [`Value`] tree: [`Serialize`] renders a
//! type into a `Value` and [`Deserialize`] rebuilds it from one. The
//! companion `serde_json` stub turns `Value` into text and back. The
//! derive macros are re-exported from the local `serde_derive`
//! proc-macro crate and follow serde's conventions: declaration-order
//! struct fields, transparent newtypes, externally tagged enums.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order so serialized output is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered field list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, de::Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| de::Error::custom(format!("missing field `{name}`"))),
            other => Err(de::Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_u64(&self) -> Result<u64, de::Error> {
        match *self {
            Value::UInt(v) => Ok(v),
            Value::Int(v) if v >= 0 => Ok(v as u64),
            ref other => Err(de::Error::custom(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    fn as_i64(&self) -> Result<i64, de::Error> {
        match *self {
            Value::Int(v) => Ok(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Ok(v as i64),
            ref other => Err(de::Error::custom(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    fn as_f64(&self) -> Result<f64, de::Error> {
        match *self {
            Value::Float(v) => Ok(v),
            Value::UInt(v) => Ok(v as f64),
            Value::Int(v) => Ok(v as f64),
            ref other => Err(de::Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree. Owned by construction, so
/// [`de::DeserializeOwned`] is an alias for this trait.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] describing the first mismatch between
    /// the value tree and the expected shape.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

/// Deserialization namespace mirroring `serde::de`.
pub mod de {
    use std::fmt;

    pub use crate::Deserialize;
    /// In this stub every `Deserialize` is owned already.
    pub use crate::Deserialize as DeserializeOwned;

    /// Deserialization error: a message describing the mismatch.
    #[derive(Clone, Debug)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Creates an error from any message.
        pub fn custom(msg: impl Into<String>) -> Self {
            Error { msg: msg.into() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}
}

/// Serialization namespace mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| de::Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<K: fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $t::from_value(it.next().ok_or_else(|| {
                                de::Error::custom("tuple too short")
                            })?)?,
                        )+))
                    }
                    other => Err(de::Error::custom(format!(
                        "expected array, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
