//! Prediction queries and training events.

use dsp_types::{BlockAddr, DestSet, NodeId, Owner, Pc, ReqType};

/// One prediction request from the cache controller: everything the
/// predictor may index or condition on.
///
/// Generic over the destination-set word width `W` (default 4 =
/// [`dsp_types::DestSet256`]); the timing simulator instantiates the
/// single-word form for ≤ 64-node systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictQuery<const W: usize = 4> {
    /// The missing block.
    pub block: BlockAddr,
    /// PC of the missing load/store (used by PC indexing).
    pub pc: Pc,
    /// The requesting node (the node this predictor belongs to).
    pub requester: NodeId,
    /// Shared or Exclusive request.
    pub req: ReqType,
    /// The minimal destination set ({requester, home}); every prediction
    /// includes it.
    pub minimal: DestSet<W>,
}

/// Training information delivered to a node's predictor (paper §3.2).
///
/// Two cues train the predictors: *external coherence requests* (which
/// carry the requester's identity, and only reach nodes inside the
/// request's destination set) and *coherence responses* (data-response
/// messages extended with the sender's identity). The Sticky-Spatial
/// baseline additionally observes directory *reissues*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainEvent<const W: usize = 4> {
    /// A data response for this node's own outstanding request arrived.
    DataResponse {
        /// The block the response is for.
        block: BlockAddr,
        /// PC of the original missing instruction (the controller
        /// remembers it until the response arrives).
        pc: Pc,
        /// Who supplied the data: memory or another cache.
        responder: Owner,
        /// The request type that completed.
        req: ReqType,
        /// Whether the minimal destination set would have sufficed for
        /// this miss. Policies allocate a new entry only when it would
        /// not (paper §3.1), keeping capacity for sharing-active blocks.
        minimal_sufficient: bool,
    },
    /// Another node's coherence request was observed (it included this
    /// node in its destination set).
    OtherRequest {
        /// The requested block.
        block: BlockAddr,
        /// The external requester.
        requester: NodeId,
        /// Shared or Exclusive.
        req: ReqType,
    },
    /// A directory reissue (retry with corrected destination set) was
    /// observed; only the Sticky-Spatial policy trains on these.
    Reissue {
        /// The block being retried.
        block: BlockAddr,
        /// The corrected (sufficient) destination set of the reissue.
        corrected: DestSet<W>,
    },
}

impl<const W: usize> TrainEvent<W> {
    /// The block this event concerns.
    pub fn block(&self) -> BlockAddr {
        match *self {
            TrainEvent::DataResponse { block, .. }
            | TrainEvent::OtherRequest { block, .. }
            | TrainEvent::Reissue { block, .. } => block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_block_accessor() {
        let block = BlockAddr::new(17);
        let e1: TrainEvent = TrainEvent::DataResponse {
            block,
            pc: Pc::new(0),
            responder: Owner::Memory,
            req: ReqType::GetShared,
            minimal_sufficient: true,
        };
        let e2: TrainEvent = TrainEvent::OtherRequest {
            block,
            requester: NodeId::new(2),
            req: ReqType::GetShared,
        };
        let e3: TrainEvent = TrainEvent::Reissue {
            block,
            corrected: DestSet::empty(),
        };
        assert_eq!(e1.block(), block);
        assert_eq!(e2.block(), block);
        assert_eq!(e3.block(), block);
    }
}
