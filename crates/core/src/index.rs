//! Predictor indexing alternatives (paper §3.4).

use std::fmt;

use serde::{Deserialize, Serialize};

use dsp_types::{BlockAddr, Pc, BLOCK_BYTES};

/// How a predictor maps a miss to a table key.
///
/// * `DataBlock` — the 64-byte block address (the paper's default).
/// * `Macroblock` — a coarser aligned region (256 B or 1024 B in the
///   paper), aggregating spatially related blocks into one entry; this
///   both captures spatial locality and increases effective reach.
/// * `ProgramCounter` — the static instruction that missed; exploits the
///   small number of static instructions causing most cache-to-cache
///   misses (Figure 4c) at the cost of plumbing the PC to the
///   controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Indexing {
    /// Index by 64-byte block address.
    DataBlock,
    /// Index by macroblock address of the given power-of-two size.
    Macroblock {
        /// Macroblock size in bytes (e.g. 256 or 1024).
        bytes: u64,
    },
    /// Index by the program counter of the missing instruction.
    ProgramCounter,
}

impl Indexing {
    /// The table key for a miss on `block` caused by the instruction at
    /// `pc`.
    ///
    /// # Panics
    ///
    /// Panics if a macroblock size is not a power of two at least the
    /// block size (64 B).
    #[inline]
    pub fn key(self, block: BlockAddr, pc: Pc) -> u64 {
        match self {
            Indexing::DataBlock => block.number(),
            Indexing::Macroblock { bytes } => block.macroblock(bytes).number(),
            // Instructions are 4-byte aligned on the paper's SPARC
            // target; drop the alignment bits.
            Indexing::ProgramCounter => pc.raw() >> 2,
        }
    }

    /// Short label used in figure legends (e.g. `"1024B macroblock"`).
    pub fn label(self) -> String {
        match self {
            Indexing::DataBlock => format!("{BLOCK_BYTES}B block"),
            Indexing::Macroblock { bytes } => format!("{bytes}B macroblock"),
            Indexing::ProgramCounter => "PC".to_string(),
        }
    }
}

impl Default for Indexing {
    /// The paper's default: data-block indexing.
    fn default() -> Self {
        Indexing::DataBlock
    }
}

impl fmt::Display for Indexing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_block_key_is_block_number() {
        assert_eq!(Indexing::DataBlock.key(BlockAddr::new(77), Pc::new(0)), 77);
    }

    #[test]
    fn macroblock_key_groups_neighbors() {
        let ix = Indexing::Macroblock { bytes: 1024 };
        // 16 blocks per 1024B macroblock.
        assert_eq!(
            ix.key(BlockAddr::new(0), Pc::new(0)),
            ix.key(BlockAddr::new(15), Pc::new(0))
        );
        assert_ne!(
            ix.key(BlockAddr::new(15), Pc::new(0)),
            ix.key(BlockAddr::new(16), Pc::new(0))
        );
    }

    #[test]
    fn pc_key_ignores_block() {
        let ix = Indexing::ProgramCounter;
        assert_eq!(
            ix.key(BlockAddr::new(1), Pc::new(0x400)),
            ix.key(BlockAddr::new(999), Pc::new(0x400))
        );
        assert_eq!(ix.key(BlockAddr::new(0), Pc::new(0x400)), 0x100);
    }

    #[test]
    fn labels() {
        assert_eq!(Indexing::DataBlock.label(), "64B block");
        assert_eq!(
            Indexing::Macroblock { bytes: 256 }.label(),
            "256B macroblock"
        );
        assert_eq!(Indexing::ProgramCounter.to_string(), "PC");
        assert_eq!(Indexing::default(), Indexing::DataBlock);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_macroblock_size_panics() {
        let _ = Indexing::Macroblock { bytes: 48 }.key(BlockAddr::new(0), Pc::new(0));
    }
}
