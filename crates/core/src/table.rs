//! Tagged, set-associative (or unbounded) predictor storage.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Capacity of a predictor table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capacity {
    /// One entry per distinct key, never evicted — the idealized
    /// configuration the paper's sensitivity analysis compares against.
    Unbounded,
    /// A tagged, set-associative table with LRU replacement.
    Finite {
        /// Total entries (the paper evaluates 8 192 and 32 768).
        entries: usize,
        /// Associativity; `entries` must be divisible by it.
        ways: usize,
    },
}

impl Capacity {
    /// The paper's headline configuration: 8 192 entries, 4-way.
    pub const ISCA03: Capacity = Capacity::Finite {
        entries: 8192,
        ways: 4,
    };
}

/// Hit/allocation statistics of a [`PredictorTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// Lookup calls.
    pub lookups: u64,
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Entries allocated.
    pub allocations: u64,
    /// Entries evicted to make room (finite tables only).
    pub evictions: u64,
}

#[derive(Clone, Debug)]
struct Way<E> {
    tag: u64,
    last_use: u64,
    entry: E,
}

/// Key-indexed storage for predictor entries.
///
/// Finite tables are tagged and set-associative with LRU replacement —
/// "Predictors are tagged, set-associative, and (by default) indexed by
/// data block address" (§3.1). Unbounded tables model the idealized
/// infinite predictor of the sensitivity study.
///
/// Allocation is explicit: [`PredictorTable::train`] only creates an
/// entry when the caller asks it to, implementing the paper's
/// allocate-on-insufficient-minimal-set policy at the policy layer.
#[derive(Clone, Debug)]
pub struct PredictorTable<E> {
    capacity: Capacity,
    unbounded: HashMap<u64, E>,
    sets: Vec<Vec<Way<E>>>,
    num_sets: usize,
    ways: usize,
    tick: u64,
    stats: TableStats,
}

impl<E: Clone + Default> PredictorTable<E> {
    /// Creates a table with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if a finite capacity has zero entries/ways or `entries` is
    /// not divisible by `ways`.
    pub fn new(capacity: Capacity) -> Self {
        let (num_sets, ways) = match capacity {
            Capacity::Unbounded => (0, 0),
            Capacity::Finite { entries, ways } => {
                assert!(
                    entries > 0 && ways > 0,
                    "finite tables need entries and ways"
                );
                assert!(
                    entries % ways == 0,
                    "entries ({entries}) must be divisible by ways ({ways})"
                );
                (entries / ways, ways)
            }
        };
        PredictorTable {
            capacity,
            unbounded: HashMap::new(),
            sets: if num_sets > 0 {
                vec![Vec::new(); num_sets]
            } else {
                Vec::new()
            },
            num_sets,
            ways,
            tick: 0,
            stats: TableStats::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Lookup for prediction: returns the live entry for `key`, if any,
    /// refreshing its LRU position.
    pub fn lookup(&mut self, key: u64) -> Option<&E> {
        self.stats.lookups += 1;
        self.tick += 1;
        match self.capacity {
            Capacity::Unbounded => {
                let hit = self.unbounded.get(&key);
                if hit.is_some() {
                    self.stats.hits += 1;
                }
                hit
            }
            Capacity::Finite { .. } => {
                let (set_idx, tag) = self.locate(key);
                let tick = self.tick;
                let set = &mut self.sets[set_idx];
                if let Some(way) = set.iter_mut().find(|w| w.tag == tag) {
                    way.last_use = tick;
                    self.stats.hits += 1;
                    Some(&way.entry)
                } else {
                    None
                }
            }
        }
    }

    /// Training access: applies `update` to the entry for `key`.
    ///
    /// If the entry is absent it is created (default-initialized) only
    /// when `allocate` is true; otherwise the event is dropped. Returns
    /// whether an entry was updated.
    pub fn train<F: FnOnce(&mut E)>(&mut self, key: u64, allocate: bool, update: F) -> bool {
        self.tick += 1;
        match self.capacity {
            Capacity::Unbounded => {
                if allocate {
                    self.stats.allocations += u64::from(!self.unbounded.contains_key(&key));
                    update(self.unbounded.entry(key).or_default());
                    true
                } else if let Some(entry) = self.unbounded.get_mut(&key) {
                    update(entry);
                    true
                } else {
                    false
                }
            }
            Capacity::Finite { .. } => {
                let (set_idx, tag) = self.locate(key);
                let tick = self.tick;
                let ways = self.ways;
                let set = &mut self.sets[set_idx];
                if let Some(way) = set.iter_mut().find(|w| w.tag == tag) {
                    way.last_use = tick;
                    update(&mut way.entry);
                    return true;
                }
                if !allocate {
                    return false;
                }
                self.stats.allocations += 1;
                if set.len() >= ways {
                    // Evict the least recently used way.
                    let victim = set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.last_use)
                        .map(|(i, _)| i)
                        .expect("set is non-empty");
                    set.swap_remove(victim);
                    self.stats.evictions += 1;
                }
                let mut entry = E::default();
                update(&mut entry);
                set.push(Way {
                    tag,
                    last_use: tick,
                    entry,
                });
                true
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match self.capacity {
            Capacity::Unbounded => self.unbounded.len(),
            Capacity::Finite { .. } => self.sets.iter().map(Vec::len).sum(),
        }
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Tag bits stored per entry for this configuration (0 when
    /// unbounded). Keys are treated as 42-bit values (a 48-bit physical
    /// address space of 64-byte blocks).
    pub fn tag_bits(&self) -> u64 {
        match self.capacity {
            Capacity::Unbounded => 0,
            Capacity::Finite { .. } => 42u64.saturating_sub(self.num_sets.trailing_zeros() as u64),
        }
    }

    fn locate(&self, key: u64) -> (usize, u64) {
        let set_idx = (key % self.num_sets as u64) as usize;
        let tag = key / self.num_sets as u64;
        (set_idx, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Table = PredictorTable<u32>;

    #[test]
    fn unbounded_never_evicts() {
        let mut t = Table::new(Capacity::Unbounded);
        for k in 0..10_000 {
            t.train(k, true, |e| *e = k as u32);
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.stats().evictions, 0);
        assert_eq!(t.lookup(1234), Some(&1234));
    }

    #[test]
    fn finite_capacity_bounded() {
        let mut t = Table::new(Capacity::Finite {
            entries: 64,
            ways: 4,
        });
        for k in 0..1000 {
            t.train(k, true, |e| *e = k as u32);
        }
        assert!(t.len() <= 64);
        assert!(t.stats().evictions > 0);
    }

    #[test]
    fn no_allocation_without_flag() {
        let mut t = Table::new(Capacity::Finite {
            entries: 64,
            ways: 4,
        });
        assert!(!t.train(5, false, |e| *e = 1));
        assert!(t.is_empty());
        assert!(t.train(5, true, |e| *e = 1));
        assert!(
            t.train(5, false, |e| *e = 2),
            "existing entries train without allocate"
        );
        assert_eq!(t.lookup(5), Some(&2));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1 set, 2 ways: keys map to the same set by construction.
        let mut t = Table::new(Capacity::Finite {
            entries: 2,
            ways: 2,
        });
        t.train(0, true, |e| *e = 10);
        t.train(1, true, |e| *e = 11);
        // Touch key 0 so key 1 is LRU.
        assert_eq!(t.lookup(0), Some(&10));
        t.train(2, true, |e| *e = 12);
        assert_eq!(t.lookup(0), Some(&10), "recently used survives");
        assert_eq!(t.lookup(1), None, "LRU evicted");
        assert_eq!(t.lookup(2), Some(&12));
    }

    #[test]
    fn tags_disambiguate_same_set() {
        let mut t = Table::new(Capacity::Finite {
            entries: 8,
            ways: 4,
        });
        // Keys 3 and 3 + num_sets (=2) share a set but differ in tag.
        t.train(3, true, |e| *e = 3);
        t.train(5, true, |e| *e = 5);
        assert_eq!(t.lookup(3), Some(&3));
        assert_eq!(t.lookup(5), Some(&5));
    }

    #[test]
    fn stats_track_hits() {
        let mut t = Table::new(Capacity::Unbounded);
        t.train(1, true, |e| *e = 1);
        let _ = t.lookup(1);
        let _ = t.lookup(2);
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.allocations, 1);
    }

    #[test]
    fn tag_bits_reasonable() {
        let t = Table::new(Capacity::Finite {
            entries: 8192,
            ways: 4,
        });
        // 2048 sets -> 11 index bits -> 31 tag bits of a 42-bit key.
        assert_eq!(t.tag_bits(), 31);
        assert_eq!(Table::new(Capacity::Unbounded).tag_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_geometry() {
        let _ = Table::new(Capacity::Finite {
            entries: 10,
            ways: 4,
        });
    }
}
