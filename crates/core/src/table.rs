//! Tagged, set-associative (or unbounded) predictor storage.
//!
//! Rebuilt on the workspace's shared storage family: the finite
//! configuration keeps its tags, LRU stamps, and entries in flat
//! per-set arrays (no per-set `Vec` indirection — one cache line of
//! tags per 4-way set instead of a pointer chase), and the unbounded
//! idealization lives in [`dsp_types::OpenTable`], the same
//! open-addressing core behind `dsp-coherence`'s block-state table.
//! The seed `HashMap` + `Vec<Vec<_>>` implementation survives verbatim
//! as [`crate::ReferencePredictorTable`], and property tests pin
//! observational equivalence (lookup/train results, eviction choices,
//! and [`TableStats`]) between the two.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dsp_types::OpenTable;

/// Capacity of a predictor table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capacity {
    /// One entry per distinct key, never evicted — the idealized
    /// configuration the paper's sensitivity analysis compares against.
    Unbounded,
    /// A tagged, set-associative table with LRU replacement.
    Finite {
        /// Total entries (the paper evaluates 8 192 and 32 768).
        entries: usize,
        /// Associativity; `entries` must be divisible by it.
        ways: usize,
    },
}

impl Capacity {
    /// The paper's headline configuration: 8 192 entries, 4-way.
    pub const ISCA03: Capacity = Capacity::Finite {
        entries: 8192,
        ways: 4,
    };
}

/// Hit/allocation statistics of a [`PredictorTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// Lookup calls.
    pub lookups: u64,
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Entries allocated.
    pub allocations: u64,
    /// Entries evicted to make room (finite tables only).
    pub evictions: u64,
}

/// Key-indexed storage for predictor entries.
///
/// Finite tables are tagged and set-associative with LRU replacement —
/// "Predictors are tagged, set-associative, and (by default) indexed by
/// data block address" (§3.1). Unbounded tables model the idealized
/// infinite predictor of the sensitivity study.
///
/// Allocation is explicit: [`PredictorTable::train`] only creates an
/// entry when the caller asks it to, implementing the paper's
/// allocate-on-insufficient-minimal-set policy at the policy layer.
///
/// # LRU tick overflow and `clone`
///
/// Recency is tracked by one `u64` tick shared across all sets,
/// incremented on every `lookup`/`train` call. At 10⁸ accesses per
/// second that counter lasts ~5 800 years, but the wrap story is still
/// defined rather than assumed away: when the tick reaches `u64::MAX`
/// the table renormalizes every live `last_use` stamp to its recency
/// rank (preserving the exact LRU order) and restarts the tick above
/// the highest rank, so eviction decisions are identical across the
/// wrap. Cloning copies the tick along with the stamps; each clone then
/// advances independently, which keeps every clone's LRU order
/// internally consistent (ticks are compared only within one table, so
/// cross-instance reuse needs no reset).
///
/// # Storage
///
/// Finite sets are materialized *lazily from one growable arena*. The
/// only full-size structures are two small per-set arrays (`set_base`,
/// the 1-based base of the set's arena block with 0 = "never
/// allocated into", and `set_len`, the occupied prefix length); a
/// set's block of `ways` contiguous slots — parallel
/// `tags`/`stamps`/`entries` arena entries — is appended on the set's
/// first allocation. Within a block, occupied slots form a prefix
/// (allocation appends, eviction replaces in place).
///
/// The layout exists for construction cost: the timing simulator
/// builds one predictor (often two tables) per node per run, and
/// default-initializing the paper's 8 192-entry geometry per table
/// was a measurable slice of short runs. With the arena, construction
/// is two allocator-zeroed 4-byte-per-set arrays, cost scales with the
/// sets a run actually touches, a lookup in an untouched set is a
/// single load, and a set probe scans ≤ `ways` adjacent tags.
#[derive(Clone, Debug)]
pub struct PredictorTable<E> {
    capacity: Capacity,
    unbounded: OpenTable<E>,
    /// Per set: 1 + the base slot of its arena block, 0 = not yet
    /// materialized.
    set_base: Vec<u32>,
    /// Occupied-prefix length per set.
    set_len: Vec<u32>,
    /// Per-way tags (meaningful only inside a set's occupied prefix).
    tags: Vec<u64>,
    /// Per-way LRU stamps (same validity).
    stamps: Vec<u64>,
    /// Per-way payloads (same validity).
    entries: Vec<E>,
    live: usize,
    num_sets: usize,
    ways: usize,
    tick: u64,
    stats: TableStats,
}

impl<E: Clone + Default> PredictorTable<E> {
    /// Creates a table with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if a finite capacity has zero entries/ways or `entries` is
    /// not divisible by `ways`.
    pub fn new(capacity: Capacity) -> Self {
        let (num_sets, ways) = match capacity {
            Capacity::Unbounded => (0, 0),
            Capacity::Finite { entries, ways } => {
                assert!(
                    entries > 0 && ways > 0,
                    "finite tables need entries and ways"
                );
                assert!(
                    entries % ways == 0,
                    "entries ({entries}) must be divisible by ways ({ways})"
                );
                (entries / ways, ways)
            }
        };
        assert!(
            (num_sets as u64 * ways as u64) < u32::MAX as u64,
            "table geometry exceeds the arena index range"
        );
        PredictorTable {
            capacity,
            unbounded: OpenTable::new(),
            set_base: vec![0; num_sets],
            set_len: vec![0; num_sets],
            tags: Vec::new(),
            stamps: Vec::new(),
            entries: Vec::new(),
            live: 0,
            num_sets,
            ways,
            tick: 0,
            stats: TableStats::default(),
        }
    }

    /// The arena block of `set_idx`, materializing it on demand.
    #[inline]
    fn materialize(&mut self, set_idx: usize) -> usize {
        match self.set_base[set_idx] {
            0 => {
                let base = self.tags.len();
                self.tags.resize(base + self.ways, 0);
                self.stamps.resize(base + self.ways, 0);
                self.entries.resize_with(base + self.ways, E::default);
                self.set_base[set_idx] = (base + 1) as u32;
                base
            }
            b => b as usize - 1,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Advances the access tick, renormalizing the LRU stamps first if
    /// the counter is about to wrap (see the type docs).
    #[inline]
    fn bump_tick(&mut self) -> u64 {
        if self.tick == u64::MAX {
            self.renormalize_ticks();
        }
        self.tick += 1;
        self.tick
    }

    /// Compresses every live `last_use` stamp to its recency rank
    /// (1-based, oldest first) and restarts the tick just above the
    /// highest rank. Relative recency — the only thing eviction ever
    /// compares — is exactly preserved.
    #[cold]
    fn renormalize_ticks(&mut self) {
        let mut live_stamps: Vec<(u64, usize)> = Vec::with_capacity(self.live);
        for set in 0..self.num_sets {
            let Some(base) = self.set_base[set].checked_sub(1) else {
                continue;
            };
            for way in 0..self.set_len[set] as usize {
                let slot = base as usize + way;
                live_stamps.push((self.stamps[slot], slot));
            }
        }
        live_stamps.sort_unstable();
        for (rank, &(_, slot)) in live_stamps.iter().enumerate() {
            self.stamps[slot] = rank as u64 + 1;
        }
        self.tick = live_stamps.len() as u64;
    }

    /// The slot of `key` within its set's occupied prefix, if present
    /// (`None` without a scan when the set was never allocated into).
    #[inline]
    fn find(&self, set_idx: usize, tag: u64) -> Option<usize> {
        let base = match self.set_base[set_idx] {
            0 => return None,
            b => b as usize - 1,
        };
        let len = self.set_len[set_idx] as usize;
        self.tags[base..base + len]
            .iter()
            .position(|&t| t == tag)
            .map(|way| base + way)
    }

    /// Lookup for prediction: returns the live entry for `key`, if any,
    /// refreshing its LRU position.
    pub fn lookup(&mut self, key: u64) -> Option<&E> {
        self.stats.lookups += 1;
        let tick = self.bump_tick();
        match self.capacity {
            Capacity::Unbounded => {
                let hit = self.unbounded.get(key);
                if hit.is_some() {
                    self.stats.hits += 1;
                }
                hit
            }
            Capacity::Finite { .. } => {
                let (set_idx, tag) = self.locate(key);
                match self.find(set_idx, tag) {
                    Some(slot) => {
                        self.stamps[slot] = tick;
                        self.stats.hits += 1;
                        Some(&self.entries[slot])
                    }
                    None => None,
                }
            }
        }
    }

    /// Training access: applies `update` to the entry for `key`.
    ///
    /// If the entry is absent it is created (default-initialized) only
    /// when `allocate` is true; otherwise the event is dropped. Returns
    /// whether an entry was updated.
    pub fn train<F: FnOnce(&mut E)>(&mut self, key: u64, allocate: bool, update: F) -> bool {
        let tick = self.bump_tick();
        match self.capacity {
            Capacity::Unbounded => {
                if allocate {
                    let (entry, inserted) = self.unbounded.get_or_insert_default(key);
                    self.stats.allocations += u64::from(inserted);
                    update(entry);
                    true
                } else if let Some(entry) = self.unbounded.get_mut(key) {
                    update(entry);
                    true
                } else {
                    false
                }
            }
            Capacity::Finite { .. } => {
                let (set_idx, tag) = self.locate(key);
                if let Some(slot) = self.find(set_idx, tag) {
                    self.stamps[slot] = tick;
                    update(&mut self.entries[slot]);
                    return true;
                }
                if !allocate {
                    return false;
                }
                self.stats.allocations += 1;
                let base = self.materialize(set_idx);
                let len = self.set_len[set_idx] as usize;
                let slot = if len >= self.ways {
                    // Evict the least recently used way. Stamps are
                    // unique (each comes from a distinct tick), so the
                    // minimum — and hence the victim — is unambiguous.
                    let victim = self.stamps[base..base + len]
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &stamp)| stamp)
                        .map(|(way, _)| base + way)
                        .expect("set is non-empty");
                    self.stats.evictions += 1;
                    victim
                } else {
                    self.set_len[set_idx] += 1;
                    self.live += 1;
                    base + len
                };
                let mut entry = E::default();
                update(&mut entry);
                self.tags[slot] = tag;
                self.stamps[slot] = tick;
                self.entries[slot] = entry;
                true
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match self.capacity {
            Capacity::Unbounded => self.unbounded.len(),
            Capacity::Finite { .. } => self.live,
        }
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Tag bits stored per entry for this configuration (0 when
    /// unbounded). Keys are treated as 42-bit values (a 48-bit physical
    /// address space of 64-byte blocks).
    pub fn tag_bits(&self) -> u64 {
        match self.capacity {
            Capacity::Unbounded => 0,
            Capacity::Finite { .. } => 42u64.saturating_sub(self.num_sets.trailing_zeros() as u64),
        }
    }

    fn locate(&self, key: u64) -> (usize, u64) {
        let set_idx = (key % self.num_sets as u64) as usize;
        let tag = key / self.num_sets as u64;
        (set_idx, tag)
    }
}

/// The seed implementation of [`PredictorTable`]: a `HashMap` for the
/// unbounded case and per-set `Vec<Way>` lists for the finite one.
///
/// Kept as the reference oracle for equivalence property tests and as
/// the baseline the `predictor-table` hot-path benchmark measures
/// against — the same pattern as `dsp_coherence::ReferenceTracker` and
/// `dsp_interconnect::ReferenceCrossbar`.
#[derive(Clone, Debug)]
pub struct ReferencePredictorTable<E> {
    capacity: Capacity,
    unbounded: HashMap<u64, E>,
    sets: Vec<Vec<ReferenceWay<E>>>,
    num_sets: usize,
    ways: usize,
    tick: u64,
    stats: TableStats,
}

#[derive(Clone, Debug)]
struct ReferenceWay<E> {
    tag: u64,
    last_use: u64,
    entry: E,
}

impl<E: Clone + Default> ReferencePredictorTable<E> {
    /// Creates a table with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics under the same geometry conditions as
    /// [`PredictorTable::new`].
    pub fn new(capacity: Capacity) -> Self {
        let (num_sets, ways) = match capacity {
            Capacity::Unbounded => (0, 0),
            Capacity::Finite { entries, ways } => {
                assert!(
                    entries > 0 && ways > 0,
                    "finite tables need entries and ways"
                );
                assert!(
                    entries % ways == 0,
                    "entries ({entries}) must be divisible by ways ({ways})"
                );
                (entries / ways, ways)
            }
        };
        ReferencePredictorTable {
            capacity,
            unbounded: HashMap::new(),
            sets: if num_sets > 0 {
                vec![Vec::new(); num_sets]
            } else {
                Vec::new()
            },
            num_sets,
            ways,
            tick: 0,
            stats: TableStats::default(),
        }
    }

    /// Lookup for prediction (see [`PredictorTable::lookup`]).
    pub fn lookup(&mut self, key: u64) -> Option<&E> {
        self.stats.lookups += 1;
        self.tick += 1;
        match self.capacity {
            Capacity::Unbounded => {
                let hit = self.unbounded.get(&key);
                if hit.is_some() {
                    self.stats.hits += 1;
                }
                hit
            }
            Capacity::Finite { .. } => {
                let (set_idx, tag) = self.locate(key);
                let tick = self.tick;
                let set = &mut self.sets[set_idx];
                if let Some(way) = set.iter_mut().find(|w| w.tag == tag) {
                    way.last_use = tick;
                    self.stats.hits += 1;
                    Some(&way.entry)
                } else {
                    None
                }
            }
        }
    }

    /// Training access (see [`PredictorTable::train`]).
    pub fn train<F: FnOnce(&mut E)>(&mut self, key: u64, allocate: bool, update: F) -> bool {
        self.tick += 1;
        match self.capacity {
            Capacity::Unbounded => {
                if allocate {
                    self.stats.allocations += u64::from(!self.unbounded.contains_key(&key));
                    update(self.unbounded.entry(key).or_default());
                    true
                } else if let Some(entry) = self.unbounded.get_mut(&key) {
                    update(entry);
                    true
                } else {
                    false
                }
            }
            Capacity::Finite { .. } => {
                let (set_idx, tag) = self.locate(key);
                let tick = self.tick;
                let ways = self.ways;
                let set = &mut self.sets[set_idx];
                if let Some(way) = set.iter_mut().find(|w| w.tag == tag) {
                    way.last_use = tick;
                    update(&mut way.entry);
                    return true;
                }
                if !allocate {
                    return false;
                }
                self.stats.allocations += 1;
                if set.len() >= ways {
                    // Evict the least recently used way.
                    let victim = set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.last_use)
                        .map(|(i, _)| i)
                        .expect("set is non-empty");
                    set.swap_remove(victim);
                    self.stats.evictions += 1;
                }
                let mut entry = E::default();
                update(&mut entry);
                set.push(ReferenceWay {
                    tag,
                    last_use: tick,
                    entry,
                });
                true
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match self.capacity {
            Capacity::Unbounded => self.unbounded.len(),
            Capacity::Finite { .. } => self.sets.iter().map(Vec::len).sum(),
        }
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    fn locate(&self, key: u64) -> (usize, u64) {
        let set_idx = (key % self.num_sets as u64) as usize;
        let tag = key / self.num_sets as u64;
        (set_idx, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Table = PredictorTable<u32>;

    #[test]
    fn unbounded_never_evicts() {
        let mut t = Table::new(Capacity::Unbounded);
        for k in 0..10_000 {
            t.train(k, true, |e| *e = k as u32);
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.stats().evictions, 0);
        assert_eq!(t.lookup(1234), Some(&1234));
    }

    #[test]
    fn finite_capacity_bounded() {
        let mut t = Table::new(Capacity::Finite {
            entries: 64,
            ways: 4,
        });
        for k in 0..1000 {
            t.train(k, true, |e| *e = k as u32);
        }
        assert!(t.len() <= 64);
        assert!(t.stats().evictions > 0);
    }

    #[test]
    fn no_allocation_without_flag() {
        let mut t = Table::new(Capacity::Finite {
            entries: 64,
            ways: 4,
        });
        assert!(!t.train(5, false, |e| *e = 1));
        assert!(t.is_empty());
        assert!(t.train(5, true, |e| *e = 1));
        assert!(
            t.train(5, false, |e| *e = 2),
            "existing entries train without allocate"
        );
        assert_eq!(t.lookup(5), Some(&2));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1 set, 2 ways: keys map to the same set by construction.
        let mut t = Table::new(Capacity::Finite {
            entries: 2,
            ways: 2,
        });
        t.train(0, true, |e| *e = 10);
        t.train(1, true, |e| *e = 11);
        // Touch key 0 so key 1 is LRU.
        assert_eq!(t.lookup(0), Some(&10));
        t.train(2, true, |e| *e = 12);
        assert_eq!(t.lookup(0), Some(&10), "recently used survives");
        assert_eq!(t.lookup(1), None, "LRU evicted");
        assert_eq!(t.lookup(2), Some(&12));
    }

    #[test]
    fn tags_disambiguate_same_set() {
        let mut t = Table::new(Capacity::Finite {
            entries: 8,
            ways: 4,
        });
        // Keys 3 and 3 + num_sets (=2) share a set but differ in tag.
        t.train(3, true, |e| *e = 3);
        t.train(5, true, |e| *e = 5);
        assert_eq!(t.lookup(3), Some(&3));
        assert_eq!(t.lookup(5), Some(&5));
    }

    #[test]
    fn stats_track_hits() {
        let mut t = Table::new(Capacity::Unbounded);
        t.train(1, true, |e| *e = 1);
        let _ = t.lookup(1);
        let _ = t.lookup(2);
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.allocations, 1);
    }

    #[test]
    fn tag_bits_reasonable() {
        let t = Table::new(Capacity::Finite {
            entries: 8192,
            ways: 4,
        });
        // 2048 sets -> 11 index bits -> 31 tag bits of a 42-bit key.
        assert_eq!(t.tag_bits(), 31);
        assert_eq!(Table::new(Capacity::Unbounded).tag_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_geometry() {
        let _ = Table::new(Capacity::Finite {
            entries: 10,
            ways: 4,
        });
    }

    /// Regression test for the LRU tick overflow story: a tick at the
    /// wrap boundary renormalizes the recency stamps instead of
    /// overflowing, and the LRU order across the wrap is untouched.
    #[test]
    fn tick_wrap_preserves_lru_order() {
        // 1 set, 4 ways: every key shares the set.
        let mut t = Table::new(Capacity::Finite {
            entries: 4,
            ways: 4,
        });
        for k in 0..4 {
            t.train(k, true, |e| *e = k as u32);
        }
        // Refresh 0 and 2 so the recency order is 1 < 3 < 0 < 2.
        let _ = t.lookup(0);
        let _ = t.lookup(2);
        // Force the wrap on the very next access.
        t.tick = u64::MAX;
        // This train allocates key 4 (set is full): the victim must be
        // key 1, the LRU way — decided *across* the renormalization.
        t.train(4, true, |e| *e = 40);
        assert_eq!(t.lookup(1), None, "LRU key evicted across the wrap");
        assert_eq!(t.lookup(3), Some(&3));
        // Next eviction takes key 3, still in pre-wrap recency order...
        // except the lookup above refreshed it; the stale key is now 0.
        t.train(5, true, |e| *e = 50);
        assert_eq!(t.lookup(0), None, "post-wrap recency keeps ordering");
        assert_eq!(t.lookup(2), Some(&2));
        assert!(t.tick > 0 && t.tick < 100, "tick restarted after the wrap");
    }

    /// Cloning copies the tick with the stamps, so a clone's LRU
    /// decisions match the original's from the moment of the clone.
    #[test]
    fn clone_preserves_lru_state() {
        let mut t = Table::new(Capacity::Finite {
            entries: 2,
            ways: 2,
        });
        t.train(0, true, |e| *e = 10);
        t.train(1, true, |e| *e = 11);
        let _ = t.lookup(0); // key 1 is now LRU
        let mut clone = t.clone();
        clone.train(2, true, |e| *e = 12);
        t.train(2, true, |e| *e = 12);
        assert_eq!(t.lookup(1), None);
        assert_eq!(clone.lookup(1), None, "clone evicted the same victim");
        assert_eq!(clone.stats(), t.stats());
    }

    /// The reference table mirrors the seed behavior the fast table is
    /// tested against (spot-check; the proptests do the heavy lifting).
    #[test]
    fn reference_table_basic_agreement() {
        let mut fast = Table::new(Capacity::ISCA03);
        let mut seed = ReferencePredictorTable::<u32>::new(Capacity::ISCA03);
        for k in 0..20_000u64 {
            let key = (k * 37) % 9000;
            assert_eq!(
                fast.train(key, k % 3 != 0, |e| *e = k as u32),
                seed.train(key, k % 3 != 0, |e| *e = k as u32)
            );
            assert_eq!(fast.lookup(key ^ 1), seed.lookup(key ^ 1));
        }
        assert_eq!(fast.stats(), seed.stats());
        assert_eq!(fast.len(), seed.len());
    }
}
