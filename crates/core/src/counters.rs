//! Small saturating counters used by the prediction policies.

use serde::{Deserialize, Serialize};

/// A 2-bit saturating counter (0..=3).
///
/// The paper's Broadcast-If-Shared and Group policies treat values above
/// 1 (i.e. 2 or 3) as "predict", giving hysteresis in both directions.
///
/// # Example
///
/// ```
/// use dsp_core::SatCounter2;
///
/// let mut c = SatCounter2::default();
/// assert!(!c.is_confident());
/// c.increment();
/// c.increment();
/// assert!(c.is_confident());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SatCounter2(u8);

impl SatCounter2 {
    /// Maximum value of the counter.
    pub const MAX: u8 = 3;

    /// Current value (0..=3).
    #[inline]
    pub fn get(self) -> u8 {
        self.0
    }

    /// Saturating increment.
    #[inline]
    pub fn increment(&mut self) {
        if self.0 < Self::MAX {
            self.0 += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn decrement(&mut self) {
        self.0 = self.0.saturating_sub(1);
    }

    /// The paper's prediction threshold: `Counter > 1`.
    #[inline]
    pub fn is_confident(self) -> bool {
        self.0 > 1
    }
}

/// A wrapping rollover counter of `BITS` bits (the Group policy uses 5).
///
/// Incrementing past the maximum wraps to zero and reports the rollover,
/// which the Group policy uses as its "train down" trigger: on rollover
/// every per-node 2-bit counter in the entry is decremented, eventually
/// aging inactive processors out of the predicted set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RolloverCounter<const BITS: u32>(u16);

impl<const BITS: u32> RolloverCounter<BITS> {
    /// Number of increments per rollover.
    pub const PERIOD: u16 = 1 << BITS;

    /// Current value (0..PERIOD).
    #[inline]
    pub fn get(self) -> u16 {
        self.0
    }

    /// Increments; returns `true` when the counter rolled over.
    #[inline]
    pub fn increment(&mut self) -> bool {
        self.0 = (self.0 + 1) % Self::PERIOD;
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat2_saturates_high() {
        let mut c = SatCounter2::default();
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn sat2_saturates_low() {
        let mut c = SatCounter2::default();
        c.decrement();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn sat2_threshold_is_above_one() {
        let mut c = SatCounter2::default();
        assert!(!c.is_confident());
        c.increment();
        assert!(!c.is_confident(), "1 is not confident");
        c.increment();
        assert!(c.is_confident(), "2 is confident");
        c.decrement();
        assert!(!c.is_confident());
    }

    #[test]
    fn rollover_period() {
        let mut r = RolloverCounter::<5>::default();
        let mut rollovers = 0;
        for _ in 0..64 {
            if r.increment() {
                rollovers += 1;
            }
        }
        assert_eq!(rollovers, 2, "5-bit counter rolls over every 32 increments");
        assert_eq!(RolloverCounter::<5>::PERIOD, 32);
    }

    #[test]
    fn rollover_reports_exactly_at_wrap() {
        let mut r = RolloverCounter::<2>::default();
        assert!(!r.increment()); // 1
        assert!(!r.increment()); // 2
        assert!(!r.increment()); // 3
        assert!(r.increment()); // 0 -> rolled
        assert_eq!(r.get(), 0);
    }
}
