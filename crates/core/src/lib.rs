//! Destination-set predictors — the primary contribution of the paper.
//!
//! A destination-set predictor sits in each L2 cache controller and, on
//! every miss, guesses which nodes must observe the resulting coherence
//! request. The predictor is accessed in parallel with the cache; on a
//! predictor miss it falls back to the *minimal* destination set
//! (requester + home node). Entries are allocated only when the minimal
//! set proved insufficient, concentrating capacity on blocks that
//! actually exhibit sharing (paper §3.1).
//!
//! This crate implements the paper's Table 3 policies plus the prior-work
//! baseline and the two protocol endpoints:
//!
//! * [`policies::OwnerPredictor`] — predicts the last observed owner;
//!   bandwidth-conscious.
//! * [`policies::BroadcastIfSharedPredictor`] — broadcasts for data that
//!   appears shared; latency-conscious.
//! * [`policies::GroupPredictor`] — per-node 2-bit counters with a 5-bit
//!   rollover "train-down" mechanism; balanced.
//! * [`policies::OwnerGroupPredictor`] — Group for writes, Owner for
//!   reads; stable-sharing-pattern hybrid.
//! * [`policies::StickySpatialPredictor`] — Bilir et al.'s original
//!   multicast-snooping predictor (untagged, direct-mapped, trains up
//!   only), reproduced for Figure 6(c).
//! * [`policies::AlwaysBroadcastPredictor`] /
//!   [`policies::AlwaysMinimalPredictor`] — the snooping and directory
//!   endpoints of the design space.
//!
//! Predictors are indexed by 64-byte data-block address, by macroblock
//! address (256 B / 1024 B), or by the program counter of the missing
//! instruction ([`Indexing`]), and are either unbounded or tagged
//! set-associative ([`Capacity`]).
//!
//! # Example
//!
//! ```
//! use dsp_core::{Capacity, Indexing, PredictorConfig, PredictQuery, TrainEvent};
//! use dsp_types::{BlockAddr, DestSet, NodeId, Owner, Pc, ReqType, SystemConfig};
//!
//! let config = SystemConfig::isca03();
//! let mut predictor = PredictorConfig::group()
//!     .indexing(Indexing::Macroblock { bytes: 1024 })
//!     .entries(Capacity::Finite { entries: 8192, ways: 4 })
//!     .build(&config);
//!
//! let block = BlockAddr::new(99);
//! let query = PredictQuery {
//!     block,
//!     pc: Pc::new(0x400),
//!     requester: NodeId::new(0),
//!     req: ReqType::GetShared,
//!     minimal: DestSet::single(NodeId::new(0)).with(block.home(16)),
//! };
//! // Untrained: falls back to the minimal set.
//! assert_eq!(predictor.predict(&query), query.minimal);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod counters;
mod events;
mod index;
pub mod policies;
mod table;

pub use config::{PolicyKind, PredictorConfig};
pub use counters::{RolloverCounter, SatCounter2};
pub use events::{PredictQuery, TrainEvent};
pub use index::Indexing;
pub use table::{Capacity, PredictorTable, ReferencePredictorTable, TableStats};

use dsp_types::DestSet;

/// A destination-set predictor, as seen by a cache controller.
///
/// Implementations must return predictions that are supersets of the
/// query's minimal set (the protocol always includes requester + home);
/// the property tests in this crate enforce it for every policy.
///
/// The trait is generic over the destination-set word width `W`
/// (default 4 = [`dsp_types::DestSet256`]). Policies whose state holds
/// no destination sets implement it for every width with a single
/// blanket `impl<const W: usize> DestSetPredictor<W> for ...`; policies
/// that do store sets (e.g. Sticky-Spatial's bitmask slots) are generic
/// structs instantiated at the simulator's chosen width.
pub trait DestSetPredictor<const W: usize = 4>: std::fmt::Debug + Send {
    /// Predicts the destination set for a miss.
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W>;

    /// Applies one piece of training information (a data response for an
    /// own request, an observed external request, or an observed
    /// directory reissue).
    fn train(&mut self, event: &TrainEvent<W>);

    /// Applies a batch of training information in slice order.
    ///
    /// Equivalent to calling [`train`](DestSetPredictor::train) on each
    /// event in turn — the default implementation does exactly that —
    /// but gives drain-style callers (the timing simulator's lazy
    /// training inboxes apply a node's backlog immediately before its
    /// next prediction) a single entry point that implementations may
    /// override with batch-friendly table walks.
    fn train_batch(&mut self, events: &[TrainEvent<W>]) {
        for event in events {
            self.train(event);
        }
    }

    /// Short human-readable policy name (e.g. `"Group"`).
    fn name(&self) -> String;

    /// Storage cost of one entry in bits, excluding tags (paper Table 3
    /// "Entry Size" row).
    fn entry_payload_bits(&self) -> u64;

    /// Total storage of the predictor in bits, including tags for finite
    /// configurations (0 for unbounded idealizations and the stateless
    /// endpoints).
    fn storage_bits(&self) -> u64;
}
