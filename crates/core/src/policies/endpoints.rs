//! The two non-predicting endpoints of the design space.

use dsp_types::{DestSet, SystemConfig};

use crate::events::{PredictQuery, TrainEvent};
use crate::DestSetPredictor;

/// Always predicts the maximal destination set — broadcast snooping's
/// "perfect accuracy at maximal bandwidth" corner of the design space.
#[derive(Clone, Debug)]
pub struct AlwaysBroadcastPredictor<const W: usize = 4> {
    broadcast: DestSet<W>,
}

impl<const W: usize> AlwaysBroadcastPredictor<W> {
    /// Creates the broadcast endpoint for `config`-sized systems.
    pub fn new(config: &SystemConfig) -> Self {
        AlwaysBroadcastPredictor {
            broadcast: config.broadcast_set_w(),
        }
    }
}

impl<const W: usize> DestSetPredictor<W> for AlwaysBroadcastPredictor<W> {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        query.minimal | self.broadcast
    }

    fn train(&mut self, _event: &TrainEvent<W>) {}

    fn name(&self) -> String {
        "Broadcast".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        0
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

/// Always predicts the minimal destination set — the directory
/// protocol's "minimal bandwidth, maximal indirection" corner.
#[derive(Clone, Debug, Default)]
pub struct AlwaysMinimalPredictor;

impl AlwaysMinimalPredictor {
    /// Creates the minimal endpoint.
    pub fn new() -> Self {
        AlwaysMinimalPredictor
    }
}

impl<const W: usize> DestSetPredictor<W> for AlwaysMinimalPredictor {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        query.minimal
    }

    fn train(&mut self, _event: &TrainEvent<W>) {}

    fn name(&self) -> String {
        "Minimal".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        0
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, NodeId, Pc, ReqType};

    fn query() -> PredictQuery {
        PredictQuery {
            block: BlockAddr::new(1),
            pc: Pc::new(0),
            requester: NodeId::new(0),
            req: ReqType::GetShared,
            minimal: DestSet::single(NodeId::new(0)).with(NodeId::new(3)),
        }
    }

    #[test]
    fn broadcast_covers_everyone() {
        let mut p: AlwaysBroadcastPredictor =
            AlwaysBroadcastPredictor::new(&SystemConfig::isca03());
        assert_eq!(p.predict(&query()).len(), 16);
        assert_eq!(p.storage_bits(), 0);
        assert_eq!(p.name(), "Broadcast");
    }

    #[test]
    fn minimal_returns_exactly_minimal() {
        let mut p = AlwaysMinimalPredictor::new();
        let q = query();
        assert_eq!(p.predict(&q), q.minimal);
        assert_eq!(DestSetPredictor::<4>::storage_bits(&p), 0);
        assert_eq!(DestSetPredictor::<4>::name(&p), "Minimal");
    }

    #[test]
    fn training_is_a_no_op() {
        let mut b: AlwaysBroadcastPredictor =
            AlwaysBroadcastPredictor::new(&SystemConfig::isca03());
        let mut m = AlwaysMinimalPredictor::new();
        let e = TrainEvent::OtherRequest {
            block: BlockAddr::new(1),
            requester: NodeId::new(5),
            req: ReqType::GetExclusive,
        };
        b.train(&e);
        m.train(&e);
        let q = query();
        assert_eq!(b.predict(&q).len(), 16);
        assert_eq!(m.predict(&q), q.minimal);
    }
}
