//! A two-level owner predictor (related work, Acacio et al.).

use dsp_types::{DestSet, NodeId, Owner, ReqType, SystemConfig};

use crate::counters::SatCounter2;
use crate::events::{PredictQuery, TrainEvent};
use crate::index::Indexing;
use crate::table::{Capacity, PredictorTable, TableStats};
use crate::DestSetPredictor;

/// One entry: a candidate owner plus a confidence counter gating it.
#[derive(Clone, Copy, Debug, Default)]
struct TwoLevelEntry {
    owner: Option<NodeId>,
    confidence: SatCounter2,
}

/// Owner prediction with a confidence gate, in the style of Acacio et
/// al.'s two-level design (paper §6): the **first level** decides
/// *whether* to predict at all (a 2-bit confidence counter trained by
/// hits and misses of the second level), and the **second level** holds
/// *which* node is believed to own the block.
///
/// Compared to the paper's plain [`crate::policies::OwnerPredictor`],
/// the gate suppresses predictions while ownership is unstable (e.g.
/// active migratory rotation), trading a few extra indirections for
/// fewer wasted request messages.
#[derive(Debug)]
pub struct TwoLevelOwnerPredictor {
    indexing: Indexing,
    table: PredictorTable<TwoLevelEntry>,
    num_nodes: usize,
}

impl TwoLevelOwnerPredictor {
    /// Creates a two-level owner predictor.
    pub fn new(indexing: Indexing, capacity: Capacity, config: &SystemConfig) -> Self {
        TwoLevelOwnerPredictor {
            indexing,
            table: PredictorTable::new(capacity),
            num_nodes: config.num_nodes(),
        }
    }

    /// Table statistics.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    fn observe(entry: &mut TwoLevelEntry, node: NodeId) {
        match entry.owner {
            Some(current) if current == node => entry.confidence.increment(),
            Some(_) => {
                // Wrong candidate: lose confidence before replacing, so
                // a single outlier does not flush a stable owner.
                if entry.confidence.get() == 0 {
                    entry.owner = Some(node);
                } else {
                    entry.confidence.decrement();
                }
            }
            None => {
                entry.owner = Some(node);
                entry.confidence.increment();
            }
        }
    }
}

impl<const W: usize> DestSetPredictor<W> for TwoLevelOwnerPredictor {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        let key = self.indexing.key(query.block, query.pc);
        match self.table.lookup(key) {
            Some(entry) if entry.confidence.is_confident() => match entry.owner {
                Some(owner) => query.minimal.with(owner),
                None => query.minimal,
            },
            _ => query.minimal,
        }
    }

    fn train(&mut self, event: &TrainEvent<W>) {
        match *event {
            TrainEvent::DataResponse {
                block,
                pc,
                responder,
                minimal_sufficient,
                ..
            } => {
                let key = self.indexing.key(block, pc);
                self.table
                    .train(key, !minimal_sufficient, |e| match responder {
                        Owner::Memory => e.confidence.decrement(),
                        Owner::Node(n) => Self::observe(e, n),
                    });
            }
            TrainEvent::OtherRequest {
                block,
                requester,
                req,
            } => {
                if req == ReqType::GetExclusive {
                    if let Indexing::ProgramCounter = self.indexing {
                        return;
                    }
                    let key = self.indexing.key(block, dsp_types::Pc::new(0));
                    self.table
                        .train(key, false, |e| Self::observe(e, requester));
                }
            }
            TrainEvent::Reissue { .. } => {}
        }
    }

    fn name(&self) -> String {
        "Two-Level Owner".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        // Owner id + valid + 2-bit confidence.
        (usize::BITS - (self.num_nodes - 1).leading_zeros()) as u64 + 1 + 2
    }

    fn storage_bits(&self) -> u64 {
        match self.table.capacity() {
            Capacity::Unbounded => {
                self.table.len() as u64 * DestSetPredictor::<W>::entry_payload_bits(self)
            }
            Capacity::Finite { entries, .. } => {
                entries as u64
                    * (DestSetPredictor::<W>::entry_payload_bits(self) + self.table.tag_bits())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, Pc};

    fn config() -> SystemConfig {
        SystemConfig::isca03()
    }

    fn predictor() -> TwoLevelOwnerPredictor {
        TwoLevelOwnerPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config())
    }

    fn query(block: u64) -> PredictQuery {
        PredictQuery {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            requester: NodeId::new(0),
            req: ReqType::GetShared,
            minimal: DestSet::single(NodeId::new(0)).with(BlockAddr::new(block).home(16)),
        }
    }

    fn response_from(block: u64, node: usize) -> TrainEvent {
        TrainEvent::DataResponse {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            responder: Owner::Node(NodeId::new(node)),
            req: ReqType::GetShared,
            minimal_sufficient: false,
        }
    }

    #[test]
    fn gate_requires_confidence() {
        let mut p = predictor();
        p.train(&response_from(3, 5));
        assert_eq!(
            p.predict(&query(3)),
            query(3).minimal,
            "one observation is not confident"
        );
        p.train(&response_from(3, 5));
        assert!(
            p.predict(&query(3)).contains(NodeId::new(5)),
            "two observations open the gate"
        );
    }

    #[test]
    fn unstable_ownership_closes_the_gate() {
        let mut p = predictor();
        p.train(&response_from(3, 5));
        p.train(&response_from(3, 5));
        assert!(p.predict(&query(3)).contains(NodeId::new(5)));
        // Ownership churns: the gate should close rather than chase.
        p.train(&response_from(3, 7));
        p.train(&response_from(3, 9));
        let set = p.predict(&query(3));
        assert_eq!(
            set,
            query(3).minimal,
            "unstable owner must not be predicted: {set}"
        );
    }

    #[test]
    fn candidate_replaced_only_after_confidence_drains() {
        let mut p = predictor();
        p.train(&response_from(3, 5)); // owner=5, conf=1
        p.train(&response_from(3, 7)); // conf drains to 0, owner stays 5
        p.train(&response_from(3, 7)); // conf==0: owner replaced by 7, conf stays 0
        p.train(&response_from(3, 7)); // conf=1
        p.train(&response_from(3, 7)); // conf=2 -> confident
        assert!(p.predict(&query(3)).contains(NodeId::new(7)));
    }

    #[test]
    fn memory_responses_drain_confidence() {
        let mut p = predictor();
        p.train(&response_from(3, 5));
        p.train(&response_from(3, 5));
        p.train(&TrainEvent::<4>::DataResponse {
            block: BlockAddr::new(3),
            pc: Pc::new(0),
            responder: Owner::Memory,
            req: ReqType::GetShared,
            minimal_sufficient: true,
        });
        assert_eq!(p.predict(&query(3)), query(3).minimal);
    }

    #[test]
    fn external_exclusive_requests_train() {
        let mut p = predictor();
        p.train(&response_from(3, 5)); // allocate
        p.train(&TrainEvent::<4>::OtherRequest {
            block: BlockAddr::new(3),
            requester: NodeId::new(5),
            req: ReqType::GetExclusive,
        });
        assert!(p.predict(&query(3)).contains(NodeId::new(5)));
    }

    #[test]
    fn entry_size_adds_confidence_bits() {
        let p = predictor();
        assert_eq!(DestSetPredictor::<4>::entry_payload_bits(&p), 4 + 1 + 2);
        assert_eq!(DestSetPredictor::<4>::name(&p), "Two-Level Owner");
    }
}
