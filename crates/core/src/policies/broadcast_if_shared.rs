//! The Broadcast-If-Shared policy (paper Table 3, column 2).

use dsp_types::{DestSet, Owner, ReqType, SystemConfig};

use crate::counters::SatCounter2;
use crate::events::{PredictQuery, TrainEvent};
use crate::index::Indexing;
use crate::table::{Capacity, PredictorTable, TableStats};
use crate::DestSetPredictor;

/// One entry: a single 2-bit saturating counter.
#[derive(Clone, Copy, Debug, Default)]
struct BisEntry {
    counter: SatCounter2,
}

/// Broadcasts when a block *appears shared*, otherwise sends the minimal
/// set.
///
/// Targets workloads where most shared data are widely shared, or where
/// bandwidth is plentiful: it performs comparably to broadcast snooping
/// while skipping the broadcast for data that is not shared. The 2-bit
/// counter is incremented on requests and responses from other
/// processors and decremented on responses from memory; the entry
/// predicts broadcast when the counter exceeds 1.
#[derive(Debug)]
pub struct BroadcastIfSharedPredictor<const W: usize = 4> {
    indexing: Indexing,
    table: PredictorTable<BisEntry>,
    broadcast: DestSet<W>,
}

impl<const W: usize> BroadcastIfSharedPredictor<W> {
    /// Creates a Broadcast-If-Shared predictor.
    pub fn new(indexing: Indexing, capacity: Capacity, config: &SystemConfig) -> Self {
        BroadcastIfSharedPredictor {
            indexing,
            table: PredictorTable::new(capacity),
            broadcast: config.broadcast_set_w(),
        }
    }

    /// Table statistics.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }
}

impl<const W: usize> DestSetPredictor<W> for BroadcastIfSharedPredictor<W> {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        let key = self.indexing.key(query.block, query.pc);
        match self.table.lookup(key) {
            Some(entry) if entry.counter.is_confident() => query.minimal | self.broadcast,
            _ => query.minimal,
        }
    }

    fn train(&mut self, event: &TrainEvent<W>) {
        match *event {
            TrainEvent::DataResponse {
                block,
                pc,
                responder,
                minimal_sufficient,
                ..
            } => {
                let key = self.indexing.key(block, pc);
                self.table
                    .train(key, !minimal_sufficient, |e| match responder {
                        Owner::Memory => e.counter.decrement(),
                        Owner::Node(_) => e.counter.increment(),
                    });
            }
            TrainEvent::OtherRequest { block, req, .. } => {
                if req == ReqType::GetExclusive {
                    if let Indexing::ProgramCounter = self.indexing {
                        return;
                    }
                    let key = self.indexing.key(block, dsp_types::Pc::new(0));
                    self.table.train(key, false, |e| e.counter.increment());
                }
            }
            TrainEvent::Reissue { .. } => {}
        }
    }

    fn name(&self) -> String {
        "Broadcast-If-Shared".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        2
    }

    fn storage_bits(&self) -> u64 {
        match self.table.capacity() {
            Capacity::Unbounded => self.table.len() as u64 * self.entry_payload_bits(),
            Capacity::Finite { entries, .. } => {
                entries as u64 * (self.entry_payload_bits() + self.table.tag_bits())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, NodeId, Pc};

    fn config() -> SystemConfig {
        SystemConfig::isca03()
    }

    fn predictor() -> BroadcastIfSharedPredictor<4> {
        BroadcastIfSharedPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config())
    }

    fn query(block: u64) -> PredictQuery {
        PredictQuery {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            requester: NodeId::new(0),
            req: ReqType::GetShared,
            minimal: DestSet::single(NodeId::new(0)).with(BlockAddr::new(block).home(16)),
        }
    }

    fn cache_response(block: u64) -> TrainEvent {
        TrainEvent::DataResponse {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            responder: Owner::Node(NodeId::new(5)),
            req: ReqType::GetShared,
            minimal_sufficient: false,
        }
    }

    fn memory_response(block: u64) -> TrainEvent {
        TrainEvent::DataResponse {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            responder: Owner::Memory,
            req: ReqType::GetShared,
            minimal_sufficient: false,
        }
    }

    #[test]
    fn needs_two_signals_to_broadcast() {
        let mut p = predictor();
        p.train(&cache_response(7));
        assert_eq!(
            p.predict(&query(7)),
            query(7).minimal,
            "counter 1 is not confident"
        );
        p.train(&cache_response(7));
        assert_eq!(
            p.predict(&query(7)),
            DestSet::broadcast(16),
            "counter 2 broadcasts"
        );
    }

    #[test]
    fn memory_responses_train_down() {
        let mut p = predictor();
        p.train(&cache_response(7));
        p.train(&cache_response(7));
        p.train(&memory_response(7));
        assert_eq!(
            p.predict(&query(7)),
            query(7).minimal,
            "decremented below threshold"
        );
    }

    #[test]
    fn external_exclusive_requests_train_up() {
        let mut p = predictor();
        p.train(&cache_response(7)); // allocates at counter 1
        p.train(&TrainEvent::OtherRequest {
            block: BlockAddr::new(7),
            requester: NodeId::new(3),
            req: ReqType::GetExclusive,
        });
        assert_eq!(p.predict(&query(7)), DestSet::broadcast(16));
    }

    #[test]
    fn external_shared_requests_ignored() {
        let mut p = predictor();
        p.train(&cache_response(7));
        p.train(&TrainEvent::OtherRequest {
            block: BlockAddr::new(7),
            requester: NodeId::new(3),
            req: ReqType::GetShared,
        });
        assert_eq!(p.predict(&query(7)), query(7).minimal);
    }

    #[test]
    fn broadcast_includes_minimal() {
        let mut p = predictor();
        p.train(&cache_response(7));
        p.train(&cache_response(7));
        let q = query(7);
        assert!(p.predict(&q).is_superset(q.minimal));
    }

    #[test]
    fn entry_size_matches_table3() {
        let p = predictor();
        assert_eq!(p.entry_payload_bits(), 2, "Table 3: 2 bits + tag");
        assert_eq!(p.name(), "Broadcast-If-Shared");
    }
}
