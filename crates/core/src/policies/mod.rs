//! The prediction policies of paper Table 3, the Sticky-Spatial prior
//! work baseline, and the two protocol endpoints.

mod broadcast_if_shared;
mod endpoints;
mod group;
mod owner;
mod owner_group;
mod random;
mod sticky_spatial;
mod two_level_owner;

pub use broadcast_if_shared::BroadcastIfSharedPredictor;
pub use endpoints::{AlwaysBroadcastPredictor, AlwaysMinimalPredictor};
pub use group::GroupPredictor;
pub use owner::OwnerPredictor;
pub use owner_group::OwnerGroupPredictor;
pub use random::RandomPredictor;
pub use sticky_spatial::StickySpatialPredictor;
pub use two_level_owner::TwoLevelOwnerPredictor;
