//! The Sticky-Spatial(k) predictor of Bilir et al. (paper §3.5).

use dsp_types::{DestSet, Owner, SystemConfig};

use crate::events::{PredictQuery, TrainEvent};
use crate::index::Indexing;
use crate::DestSetPredictor;

/// The original multicast snooping predictor, reproduced as the prior-work
/// baseline for Figure 6(c).
///
/// Structurally unlike the paper's own policies:
///
/// * **untagged and direct-mapped** — the index selects an entry and the
///   tag is ignored, so aliasing blocks share (and pollute) entries;
/// * **"sticky"** — it only trains *up* (OR-ing nodes into a bitmask),
///   relying on aliasing overwrites rather than any train-down
///   mechanism;
/// * **"spatial"** — a prediction is the union of the indexed entry and
///   its `k` neighbor entries on each side, a cruder way of exploiting
///   spatial locality than macroblock indexing.
///
/// It trains by observing data responses and directory reissues (the
/// corrected destination set of a retry), per the original design.
#[derive(Debug)]
pub struct StickySpatialPredictor<const W: usize = 4> {
    entries: Vec<DestSet<W>>,
    span: usize,
    num_nodes: usize,
}

impl<const W: usize> StickySpatialPredictor<W> {
    /// Creates a Sticky-Spatial(`span`) predictor with `entries` slots
    /// (must be a power of two; the original used 4096).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, span: usize, config: &SystemConfig) -> Self {
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two, got {entries}"
        );
        StickySpatialPredictor {
            entries: vec![DestSet::empty(); entries],
            span,
            num_nodes: config.num_nodes(),
        }
    }

    /// Number of direct-mapped slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no slots (never true — construction
    /// requires a power of two).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn slot(&self, key: u64) -> usize {
        (key as usize) & (self.entries.len() - 1)
    }

    fn train_up(&mut self, key: u64, nodes: DestSet<W>) {
        let slot = self.slot(key);
        self.entries[slot] |= nodes;
    }
}

impl<const W: usize> DestSetPredictor<W> for StickySpatialPredictor<W> {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        let key = Indexing::DataBlock.key(query.block, query.pc);
        let base = self.slot(key);
        let len = self.entries.len();
        let mut set = query.minimal;
        // Aggregate the entry and its k neighbors on each side
        // (wrapping), "restricting it to a direct-mapped implementation".
        for d in 0..=(2 * self.span) {
            let idx = (base + len + d - self.span) % len;
            set |= self.entries[idx];
        }
        set
    }

    fn train(&mut self, event: &TrainEvent<W>) {
        match *event {
            TrainEvent::DataResponse {
                block, responder, ..
            } => {
                if let Owner::Node(node) = responder {
                    let key = Indexing::DataBlock.key(block, dsp_types::Pc::new(0));
                    self.train_up(key, DestSet::single(node));
                }
            }
            TrainEvent::Reissue { block, corrected } => {
                let key = Indexing::DataBlock.key(block, dsp_types::Pc::new(0));
                self.train_up(key, corrected);
            }
            // Sticky-Spatial trains only on responses and retries from
            // the memory controller.
            TrainEvent::OtherRequest { .. } => {}
        }
    }

    fn name(&self) -> String {
        format!("Sticky-Spatial({})", self.span)
    }

    fn entry_payload_bits(&self) -> u64 {
        self.num_nodes as u64
    }

    fn storage_bits(&self) -> u64 {
        // Untagged: N bits per slot.
        self.entries.len() as u64 * self.entry_payload_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, NodeId, Pc, ReqType};

    fn config() -> SystemConfig {
        SystemConfig::isca03()
    }

    fn query(block: u64) -> PredictQuery {
        PredictQuery {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            requester: NodeId::new(0),
            req: ReqType::GetShared,
            minimal: DestSet::single(NodeId::new(0)).with(BlockAddr::new(block).home(16)),
        }
    }

    fn response(block: u64, node: usize) -> TrainEvent {
        TrainEvent::DataResponse {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            responder: Owner::Node(NodeId::new(node)),
            req: ReqType::GetShared,
            minimal_sufficient: false,
        }
    }

    #[test]
    fn trains_up_from_responses() {
        let mut p = StickySpatialPredictor::new(1024, 1, &config());
        p.train(&response(5, 9));
        assert!(p.predict(&query(5)).contains(NodeId::new(9)));
    }

    #[test]
    fn spatial_aggregation_reads_neighbors() {
        let mut p = StickySpatialPredictor::new(1024, 1, &config());
        p.train(&response(6, 9));
        // Blocks 5 and 7 index the neighbor slots of 6.
        assert!(p.predict(&query(5)).contains(NodeId::new(9)));
        assert!(p.predict(&query(7)).contains(NodeId::new(9)));
        // Block 8 is two slots away: out of span 1.
        assert!(!p.predict(&query(8)).contains(NodeId::new(9)));
    }

    #[test]
    fn never_trains_down() {
        let mut p = StickySpatialPredictor::new(1024, 0, &config());
        p.train(&response(5, 9));
        // A memory response does NOT clear anything (sticky).
        p.train(&TrainEvent::DataResponse {
            block: BlockAddr::new(5),
            pc: Pc::new(0),
            responder: Owner::Memory,
            req: ReqType::GetShared,
            minimal_sufficient: true,
        });
        assert!(p.predict(&query(5)).contains(NodeId::new(9)));
    }

    #[test]
    fn aliasing_pollutes_untagged_entries() {
        let mut p = StickySpatialPredictor::new(16, 0, &config());
        p.train(&response(3, 9));
        // Block 3 + 16 aliases to the same slot — and inherits P9.
        assert!(p.predict(&query(3 + 16)).contains(NodeId::new(9)));
    }

    #[test]
    fn reissue_trains_whole_corrected_set() {
        let mut p = StickySpatialPredictor::new(1024, 0, &config());
        let corrected = DestSet::from_iter([NodeId::new(2), NodeId::new(4), NodeId::new(6)]);
        p.train(&TrainEvent::Reissue {
            block: BlockAddr::new(5),
            corrected,
        });
        assert!(p.predict(&query(5)).is_superset(corrected));
    }

    #[test]
    fn external_requests_ignored() {
        let mut p = StickySpatialPredictor::new(1024, 1, &config());
        p.train(&TrainEvent::OtherRequest {
            block: BlockAddr::new(5),
            requester: NodeId::new(9),
            req: ReqType::GetExclusive,
        });
        assert!(!p.predict(&query(5)).contains(NodeId::new(9)));
    }

    #[test]
    fn storage_is_n_bits_per_slot() {
        let p: StickySpatialPredictor = StickySpatialPredictor::new(4096, 1, &config());
        assert_eq!(p.storage_bits(), 4096 * 16);
        assert_eq!(p.len(), 4096);
        assert_eq!(p.name(), "Sticky-Spatial(1)");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _: StickySpatialPredictor = StickySpatialPredictor::new(1000, 1, &config());
    }
}
