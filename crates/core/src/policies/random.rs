//! An adversarial random predictor for protocol stress testing.

use dsp_types::{DestSet, SystemConfig};

use crate::events::{PredictQuery, TrainEvent};
use crate::DestSetPredictor;

/// Predicts a *uniformly random* destination set on every query.
///
/// Not a real policy: it exists to falsify the protocol layers. A
/// correct multicast snooping implementation must tolerate arbitrary
/// predictions — any insufficient set is caught by the home directory
/// and reissued, and the third attempt broadcasts — so the simulator
/// must complete every miss and never deadlock no matter what this
/// predictor returns. The stress suites in `dsp-sim` and the root
/// crate's integration tests run entire workloads through it.
///
/// Deterministic for a given seed (xorshift over the query identity),
/// so failures reproduce.
#[derive(Clone, Debug)]
pub struct RandomPredictor {
    seed: u64,
    state: u64,
    nodes: usize,
}

impl RandomPredictor {
    /// Creates a seeded random predictor for `config`-sized systems.
    pub fn new(seed: u64, config: &SystemConfig) -> Self {
        RandomPredictor {
            seed,
            state: seed | 1,
            nodes: config.num_nodes(),
        }
    }

    fn next_mask(&mut self, salt: u64) -> u64 {
        // xorshift64* keyed by query identity and call count.
        let mut x = self.state ^ salt.wrapping_mul(dsp_types::hash::FX_MIX) ^ self.seed;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl<const W: usize> DestSetPredictor<W> for RandomPredictor {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        let broadcast = DestSet::broadcast(self.nodes);
        let random = if self.nodes <= 64 {
            // One draw, as the predictor always did for paper-sized
            // systems (keeps existing seeded streams identical).
            DestSet::from_bits(self.next_mask(query.block.number()))
        } else {
            // Wider systems draw one mask word per set word so nodes
            // 64..=255 are stressed too.
            let mut words = [0u64; W];
            for w in &mut words {
                *w = self.next_mask(query.block.number());
            }
            DestSet::from_words(words)
        };
        query.minimal | (random & broadcast)
    }

    fn train(&mut self, _event: &TrainEvent<W>) {}

    fn name(&self) -> String {
        "Random (stress)".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        0
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, NodeId, Pc, ReqType};

    fn query(block: u64) -> PredictQuery {
        PredictQuery {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            requester: NodeId::new(0),
            req: ReqType::GetShared,
            minimal: DestSet::single(NodeId::new(0)).with(BlockAddr::new(block).home(16)),
        }
    }

    #[test]
    fn always_superset_of_minimal() {
        let mut p = RandomPredictor::new(99, &SystemConfig::isca03());
        for b in 0..1000 {
            let q = query(b);
            assert!(p.predict(&q).is_superset(q.minimal));
        }
    }

    #[test]
    fn stays_within_the_system() {
        let cfg = SystemConfig::builder().num_nodes(5).build().expect("valid");
        let mut p = RandomPredictor::new(7, &cfg);
        let all = DestSet::broadcast(5);
        for b in 0..1000 {
            let mut q = query(b);
            q.minimal = DestSet::single(NodeId::new(0)).with(BlockAddr::new(b).home(5));
            assert!(p.predict(&q).is_subset(all));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sys = SystemConfig::isca03();
        let mut a = RandomPredictor::new(5, &sys);
        let mut b = RandomPredictor::new(5, &sys);
        for blk in 0..100 {
            assert_eq!(a.predict(&query(blk)), b.predict(&query(blk)));
        }
        let mut c = RandomPredictor::new(6, &sys);
        let differs = (0..100).any(|blk| {
            RandomPredictor::new(5, &sys).predict(&query(blk)) != c.predict(&query(blk))
        });
        assert!(differs);
    }

    #[test]
    fn wide_systems_stress_upper_nodes() {
        let cfg = SystemConfig::builder()
            .num_nodes(256)
            .build()
            .expect("valid");
        let mut p = RandomPredictor::new(17, &cfg);
        let mut upper = DestSet::empty();
        for b in 0..200 {
            let mut q = query(b);
            q.minimal = DestSet::single(NodeId::new(0)).with(BlockAddr::new(b).home(256));
            let set = p.predict(&q);
            assert!(set.is_subset(DestSet::broadcast(256)));
            upper |= set - DestSet::broadcast(64);
        }
        assert!(
            upper.len() > 50,
            "random stress must reach nodes 64..=255, got {upper}"
        );
    }

    #[test]
    fn predictions_vary() {
        let mut p = RandomPredictor::new(3, &SystemConfig::isca03());
        let sets: std::collections::HashSet<u64> =
            (0..50).map(|b| p.predict(&query(b)).bits()).collect();
        assert!(
            sets.len() > 10,
            "random predictor should produce diverse sets"
        );
    }
}
