//! The Owner policy (paper Table 3, column 1).

use dsp_types::{DestSet, NodeId, Owner, ReqType, SystemConfig};

use crate::events::{PredictQuery, TrainEvent};
use crate::index::Indexing;
use crate::table::{Capacity, PredictorTable, TableStats};
use crate::DestSetPredictor;

/// One Owner entry: "Owner ID and Valid bit".
#[derive(Clone, Copy, Debug, Default)]
struct OwnerEntry {
    owner: Option<NodeId>,
}

/// Predicts that the *last observed owner* of a block must see the
/// request.
///
/// Targets pairwise sharing and bandwidth-limited systems: it adds at
/// most one node beyond the minimal set, independent of system size.
/// Training follows Table 3 exactly:
///
/// * data response from memory → clear valid;
/// * data response from a cache → record the responder as owner;
/// * observed external request for exclusive → record the requester;
/// * observed external request for shared → ignored.
///
/// # Example
///
/// ```
/// use dsp_core::policies::OwnerPredictor;
/// use dsp_core::{Capacity, DestSetPredictor, Indexing, PredictQuery, TrainEvent};
/// use dsp_types::{BlockAddr, DestSet, NodeId, Owner, Pc, ReqType, SystemConfig};
///
/// let config = SystemConfig::isca03();
/// let mut p = OwnerPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config);
/// let block = BlockAddr::new(4);
/// p.train(&TrainEvent::<4>::DataResponse {
///     block,
///     pc: Pc::new(0),
///     responder: Owner::Node(NodeId::new(9)),
///     req: ReqType::GetShared,
///     minimal_sufficient: false,
/// });
/// let q: PredictQuery = PredictQuery {
///     block,
///     pc: Pc::new(0),
///     requester: NodeId::new(0),
///     req: ReqType::GetShared,
///     minimal: DestSet::single(NodeId::new(0)),
/// };
/// assert!(p.predict(&q).contains(NodeId::new(9)));
/// ```
#[derive(Debug)]
pub struct OwnerPredictor {
    indexing: Indexing,
    table: PredictorTable<OwnerEntry>,
    num_nodes: usize,
}

impl OwnerPredictor {
    /// Creates an Owner predictor.
    pub fn new(indexing: Indexing, capacity: Capacity, config: &SystemConfig) -> Self {
        OwnerPredictor {
            indexing,
            table: PredictorTable::new(capacity),
            num_nodes: config.num_nodes(),
        }
    }

    /// Table statistics (lookups, hits, allocations, evictions).
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }
}

impl<const W: usize> DestSetPredictor<W> for OwnerPredictor {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        let key = self.indexing.key(query.block, query.pc);
        match self.table.lookup(key) {
            Some(OwnerEntry { owner: Some(owner) }) => query.minimal.with(*owner),
            _ => query.minimal,
        }
    }

    fn train(&mut self, event: &TrainEvent<W>) {
        match *event {
            TrainEvent::DataResponse {
                block,
                pc,
                responder,
                minimal_sufficient,
                ..
            } => {
                let key = self.indexing.key(block, pc);
                // Allocate only when the minimal set proved insufficient.
                self.table.train(key, !minimal_sufficient, |e| {
                    e.owner = match responder {
                        Owner::Memory => None,
                        Owner::Node(n) => Some(n),
                    };
                });
            }
            TrainEvent::OtherRequest {
                block,
                requester,
                req,
            } => {
                if req == ReqType::GetExclusive {
                    // External requests train existing entries but do not
                    // allocate; PC-indexed predictors cannot see a foreign
                    // PC, so the block's own address trains under PC
                    // indexing only via data responses.
                    if let Indexing::ProgramCounter = self.indexing {
                        return;
                    }
                    let key = self.indexing.key(block, dsp_types::Pc::new(0));
                    self.table.train(key, false, |e| e.owner = Some(requester));
                }
            }
            TrainEvent::Reissue { .. } => {}
        }
    }

    fn name(&self) -> String {
        "Owner".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        // "log2 N bits + 1 bit" — owner id plus valid.
        (usize::BITS - (self.num_nodes - 1).leading_zeros()) as u64 + 1
    }

    fn storage_bits(&self) -> u64 {
        match self.table.capacity() {
            Capacity::Unbounded => {
                self.table.len() as u64 * DestSetPredictor::<W>::entry_payload_bits(self)
            }
            Capacity::Finite { entries, .. } => {
                entries as u64
                    * (DestSetPredictor::<W>::entry_payload_bits(self) + self.table.tag_bits())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, Pc};

    fn config() -> SystemConfig {
        SystemConfig::isca03()
    }

    fn query(block: u64, req: ReqType) -> PredictQuery {
        PredictQuery {
            block: BlockAddr::new(block),
            pc: Pc::new(0x100),
            requester: NodeId::new(0),
            req,
            minimal: DestSet::single(NodeId::new(0)).with(BlockAddr::new(block).home(16)),
        }
    }

    fn response(block: u64, responder: Owner, minimal_sufficient: bool) -> TrainEvent {
        TrainEvent::DataResponse {
            block: BlockAddr::new(block),
            pc: Pc::new(0x100),
            responder,
            req: ReqType::GetShared,
            minimal_sufficient,
        }
    }

    #[test]
    fn untrained_returns_minimal() {
        let mut p = OwnerPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        let q = query(5, ReqType::GetShared);
        assert_eq!(p.predict(&q), q.minimal);
    }

    #[test]
    fn cache_response_trains_owner() {
        let mut p = OwnerPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        p.train(&response(5, Owner::Node(NodeId::new(7)), false));
        let q = query(5, ReqType::GetShared);
        assert_eq!(p.predict(&q), q.minimal.with(NodeId::new(7)));
    }

    #[test]
    fn memory_response_clears_valid() {
        let mut p = OwnerPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        p.train(&response(5, Owner::Node(NodeId::new(7)), false));
        p.train(&response(5, Owner::Memory, false));
        let q = query(5, ReqType::GetShared);
        assert_eq!(
            p.predict(&q),
            q.minimal,
            "Table 3: memory response clears Valid"
        );
    }

    #[test]
    fn external_exclusive_request_takes_over_ownership() {
        let mut p = OwnerPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        p.train(&response(5, Owner::Node(NodeId::new(7)), false));
        p.train(&TrainEvent::<4>::OtherRequest {
            block: BlockAddr::new(5),
            requester: NodeId::new(3),
            req: ReqType::GetExclusive,
        });
        let q = query(5, ReqType::GetShared);
        assert_eq!(p.predict(&q), q.minimal.with(NodeId::new(3)));
    }

    #[test]
    fn external_shared_request_ignored() {
        let mut p = OwnerPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        p.train(&response(5, Owner::Node(NodeId::new(7)), false));
        p.train(&TrainEvent::<4>::OtherRequest {
            block: BlockAddr::new(5),
            requester: NodeId::new(3),
            req: ReqType::GetShared,
        });
        let q = query(5, ReqType::GetShared);
        assert_eq!(
            p.predict(&q),
            q.minimal.with(NodeId::new(7)),
            "Table 3: GETS ignored"
        );
    }

    #[test]
    fn no_allocation_when_minimal_sufficed() {
        let mut p = OwnerPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        p.train(&response(5, Owner::Memory, true));
        assert_eq!(p.table_stats().allocations, 0);
        // External requests alone never allocate either.
        p.train(&TrainEvent::<4>::OtherRequest {
            block: BlockAddr::new(5),
            requester: NodeId::new(3),
            req: ReqType::GetExclusive,
        });
        assert_eq!(p.table_stats().allocations, 0);
    }

    #[test]
    fn macroblock_indexing_aggregates_neighbors() {
        let mut p = OwnerPredictor::new(
            Indexing::Macroblock { bytes: 1024 },
            Capacity::Unbounded,
            &config(),
        );
        // Train on block 0; predict on block 15 (same 1024B macroblock).
        p.train(&response(0, Owner::Node(NodeId::new(9)), false));
        let q = query(15, ReqType::GetShared);
        assert!(p.predict(&q).contains(NodeId::new(9)));
        // Block 16 is in the next macroblock: untrained.
        let q = query(16, ReqType::GetShared);
        assert_eq!(p.predict(&q), q.minimal);
    }

    #[test]
    fn prediction_includes_minimal_set() {
        let mut p = OwnerPredictor::new(Indexing::DataBlock, Capacity::ISCA03, &config());
        p.train(&response(5, Owner::Node(NodeId::new(7)), false));
        let q = query(5, ReqType::GetExclusive);
        assert!(p.predict(&q).is_superset(q.minimal));
    }

    #[test]
    fn entry_size_matches_table3() {
        let p = OwnerPredictor::new(Indexing::DataBlock, Capacity::ISCA03, &config());
        // 16 nodes: log2(16) + 1 = 5 bits payload.
        assert_eq!(DestSetPredictor::<4>::entry_payload_bits(&p), 5);
        // 8192 entries with ~31-bit tags: ~4.5 bytes/entry, "approximately
        // 4 bytes" in the paper.
        let bytes_per_entry = DestSetPredictor::<4>::storage_bits(&p) as f64 / 8192.0 / 8.0;
        assert!(
            (3.0..6.0).contains(&bytes_per_entry),
            "{bytes_per_entry} B/entry"
        );
        assert_eq!(DestSetPredictor::<4>::name(&p), "Owner");
    }
}
