//! The Group policy (paper Table 3, column 3).

use dsp_types::{DestSet, NodeId, Owner, ReqType, SystemConfig};

use crate::counters::{RolloverCounter, SatCounter2};
use crate::events::{PredictQuery, TrainEvent};
use crate::index::Indexing;
use crate::table::{Capacity, PredictorTable, TableStats};
use crate::DestSetPredictor;

/// One entry: N 2-bit saturating counters plus a 5-bit rollover counter.
#[derive(Clone, Debug, Default)]
struct GroupEntry {
    counters: Vec<SatCounter2>,
    rollover: RolloverCounter<5>,
}

impl GroupEntry {
    fn ensure(&mut self, n: usize) {
        if self.counters.len() < n {
            self.counters.resize(n, SatCounter2::default());
        }
    }

    /// Counts one observation of `node` and applies the train-down rule:
    /// every rollover of the 5-bit counter decrements all per-node
    /// counters, aging out inactive processors.
    fn observe(&mut self, node: NodeId, n: usize) {
        self.ensure(n);
        self.counters[node.index()].increment();
        if self.rollover.increment() {
            for c in &mut self.counters {
                c.decrement();
            }
        }
    }
}

/// Predicts the *recent sharing group* of a block: all nodes whose 2-bit
/// counter exceeds 1.
///
/// Targets systems where groups of processors (fewer than all) share
/// blocks and bandwidth is neither extremely limited nor plentiful —
/// e.g. large machines running partitioned or phase-structured work.
/// The rollover counter implements the paper's explicit "train down"
/// mechanism, which the original Sticky-Spatial predictor lacks.
#[derive(Debug)]
pub struct GroupPredictor {
    indexing: Indexing,
    table: PredictorTable<GroupEntry>,
    num_nodes: usize,
}

impl GroupPredictor {
    /// Creates a Group predictor.
    pub fn new(indexing: Indexing, capacity: Capacity, config: &SystemConfig) -> Self {
        GroupPredictor {
            indexing,
            table: PredictorTable::new(capacity),
            num_nodes: config.num_nodes(),
        }
    }

    /// Table statistics.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }
}

impl<const W: usize> DestSetPredictor<W> for GroupPredictor {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        let key = self.indexing.key(query.block, query.pc);
        match self.table.lookup(key) {
            Some(entry) => {
                let mut set = query.minimal;
                for (i, counter) in entry.counters.iter().enumerate() {
                    if counter.is_confident() {
                        set.insert(NodeId::new(i));
                    }
                }
                set
            }
            None => query.minimal,
        }
    }

    fn train(&mut self, event: &TrainEvent<W>) {
        let n = self.num_nodes;
        match *event {
            TrainEvent::DataResponse {
                block,
                pc,
                responder,
                minimal_sufficient,
                ..
            } => {
                if let Owner::Node(responder) = responder {
                    let key = self.indexing.key(block, pc);
                    self.table
                        .train(key, !minimal_sufficient, |e| e.observe(responder, n));
                }
            }
            TrainEvent::OtherRequest {
                block,
                requester,
                req,
            } => {
                if req == ReqType::GetExclusive {
                    if let Indexing::ProgramCounter = self.indexing {
                        return;
                    }
                    let key = self.indexing.key(block, dsp_types::Pc::new(0));
                    self.table.train(key, false, |e| e.observe(requester, n));
                }
            }
            TrainEvent::Reissue { .. } => {}
        }
    }

    fn name(&self) -> String {
        "Group".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        // "2N bits + 5 bits + tag".
        2 * self.num_nodes as u64 + 5
    }

    fn storage_bits(&self) -> u64 {
        match self.table.capacity() {
            Capacity::Unbounded => {
                self.table.len() as u64 * DestSetPredictor::<W>::entry_payload_bits(self)
            }
            Capacity::Finite { entries, .. } => {
                entries as u64
                    * (DestSetPredictor::<W>::entry_payload_bits(self) + self.table.tag_bits())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, Pc};

    fn config() -> SystemConfig {
        SystemConfig::isca03()
    }

    fn predictor() -> GroupPredictor {
        GroupPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config())
    }

    fn query(block: u64) -> PredictQuery {
        PredictQuery {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            requester: NodeId::new(0),
            req: ReqType::GetExclusive,
            minimal: DestSet::single(NodeId::new(0)).with(BlockAddr::new(block).home(16)),
        }
    }

    fn response_from(block: u64, node: usize) -> TrainEvent {
        TrainEvent::DataResponse {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            responder: Owner::Node(NodeId::new(node)),
            req: ReqType::GetShared,
            minimal_sufficient: false,
        }
    }

    fn external(block: u64, node: usize) -> TrainEvent {
        TrainEvent::OtherRequest {
            block: BlockAddr::new(block),
            requester: NodeId::new(node),
            req: ReqType::GetExclusive,
        }
    }

    #[test]
    fn members_join_after_two_observations() {
        let mut p = predictor();
        p.train(&response_from(3, 5));
        assert!(!p.predict(&query(3)).contains(NodeId::new(5)));
        p.train(&response_from(3, 5));
        assert!(p.predict(&query(3)).contains(NodeId::new(5)));
    }

    #[test]
    fn tracks_multiple_members() {
        let mut p = predictor();
        for node in [5, 7, 9] {
            p.train(&response_from(3, 5)); // allocation path via node 5
            p.train(&external(3, node));
            p.train(&external(3, node));
        }
        let set = p.predict(&query(3));
        for node in [5, 7, 9] {
            assert!(set.contains(NodeId::new(node)), "missing P{node} in {set}");
        }
    }

    #[test]
    fn rollover_trains_down_inactive_members() {
        let mut p = predictor();
        // Node 5 active early.
        p.train(&response_from(3, 5));
        p.train(&response_from(3, 5));
        assert!(p.predict(&query(3)).contains(NodeId::new(5)));
        // Then node 7 dominates for > 2 rollover periods (5-bit = 32).
        for _ in 0..70 {
            p.train(&external(3, 7));
        }
        let set = p.predict(&query(3));
        assert!(set.contains(NodeId::new(7)));
        assert!(
            !set.contains(NodeId::new(5)),
            "inactive node should be trained down by rollover: {set}"
        );
    }

    #[test]
    fn memory_responses_do_not_allocate() {
        let mut p = predictor();
        p.train(&TrainEvent::<4>::DataResponse {
            block: BlockAddr::new(3),
            pc: Pc::new(0),
            responder: Owner::Memory,
            req: ReqType::GetShared,
            minimal_sufficient: true,
        });
        assert_eq!(p.table_stats().allocations, 0);
    }

    #[test]
    fn shared_external_requests_ignored() {
        let mut p = predictor();
        p.train(&response_from(3, 5));
        p.train(&TrainEvent::<4>::OtherRequest {
            block: BlockAddr::new(3),
            requester: NodeId::new(9),
            req: ReqType::GetShared,
        });
        assert!(!p.predict(&query(3)).contains(NodeId::new(9)));
    }

    #[test]
    fn prediction_superset_of_minimal() {
        let mut p = GroupPredictor::new(
            Indexing::Macroblock { bytes: 1024 },
            Capacity::ISCA03,
            &config(),
        );
        p.train(&response_from(3, 5));
        p.train(&response_from(3, 5));
        let q = query(3);
        assert!(p.predict(&q).is_superset(q.minimal));
    }

    #[test]
    fn entry_size_matches_table3() {
        let p = predictor();
        // 16 nodes: 2*16 + 5 = 37 bits ("approximately 8 bytes" with tag).
        assert_eq!(DestSetPredictor::<4>::entry_payload_bits(&p), 37);
        let finite = GroupPredictor::new(Indexing::DataBlock, Capacity::ISCA03, &config());
        let bytes_per_entry = DestSetPredictor::<4>::storage_bits(&finite) as f64 / 8192.0 / 8.0;
        assert!(
            (6.0..10.0).contains(&bytes_per_entry),
            "{bytes_per_entry} B/entry"
        );
        assert_eq!(DestSetPredictor::<4>::name(&p), "Group");
    }
}
