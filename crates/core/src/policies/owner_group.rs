//! The Owner/Group hybrid policy (paper §3.3).

use dsp_types::{DestSet, ReqType, SystemConfig};

use crate::events::{PredictQuery, TrainEvent};
use crate::index::Indexing;
use crate::policies::{GroupPredictor, OwnerPredictor};
use crate::table::Capacity;
use crate::DestSetPredictor;

/// Uses a [`GroupPredictor`] for requests for exclusive and an
/// [`OwnerPredictor`] for requests for shared.
///
/// Targets stable sharing patterns under more limited bandwidth than
/// Group alone: because every member of a stable sharing set observes all
/// requests for exclusive, each member can track the current owner, so
/// requests for shared can be sent to just the predicted owner —
/// reducing bandwidth while keeping Group's accuracy for writes.
#[derive(Debug)]
pub struct OwnerGroupPredictor {
    owner: OwnerPredictor,
    group: GroupPredictor,
}

impl OwnerGroupPredictor {
    /// Creates an Owner/Group predictor; both halves share the indexing
    /// and capacity configuration.
    pub fn new(indexing: Indexing, capacity: Capacity, config: &SystemConfig) -> Self {
        OwnerGroupPredictor {
            owner: OwnerPredictor::new(indexing, capacity, config),
            group: GroupPredictor::new(indexing, capacity, config),
        }
    }
}

impl<const W: usize> DestSetPredictor<W> for OwnerGroupPredictor {
    fn predict(&mut self, query: &PredictQuery<W>) -> DestSet<W> {
        match query.req {
            ReqType::GetExclusive => self.group.predict(query),
            ReqType::GetShared => self.owner.predict(query),
        }
    }

    fn train(&mut self, event: &TrainEvent<W>) {
        self.owner.train(event);
        self.group.train(event);
    }

    fn name(&self) -> String {
        "Owner/Group".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        DestSetPredictor::<W>::entry_payload_bits(&self.owner)
            + DestSetPredictor::<W>::entry_payload_bits(&self.group)
    }

    fn storage_bits(&self) -> u64 {
        DestSetPredictor::<W>::storage_bits(&self.owner)
            + DestSetPredictor::<W>::storage_bits(&self.group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, NodeId, Owner, Pc};

    fn config() -> SystemConfig {
        SystemConfig::isca03()
    }

    fn query(block: u64, req: ReqType) -> PredictQuery {
        PredictQuery {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            requester: NodeId::new(0),
            req,
            minimal: DestSet::single(NodeId::new(0)).with(BlockAddr::new(block).home(16)),
        }
    }

    fn response_from(block: u64, node: usize) -> TrainEvent {
        TrainEvent::DataResponse {
            block: BlockAddr::new(block),
            pc: Pc::new(0),
            responder: Owner::Node(NodeId::new(node)),
            req: ReqType::GetShared,
            minimal_sufficient: false,
        }
    }

    fn external(block: u64, node: usize) -> TrainEvent {
        TrainEvent::OtherRequest {
            block: BlockAddr::new(block),
            requester: NodeId::new(node),
            req: ReqType::GetExclusive,
        }
    }

    #[test]
    fn reads_use_owner_half() {
        let mut p = OwnerGroupPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        // Train group membership for 5 and 7, with 7 as last owner.
        p.train(&response_from(3, 5));
        p.train(&response_from(3, 5));
        p.train(&external(3, 7));
        p.train(&external(3, 7));
        let read = p.predict(&query(3, ReqType::GetShared));
        // Owner half: only the latest owner (7) beyond the minimal set.
        assert!(read.contains(NodeId::new(7)));
        assert!(
            !read.contains(NodeId::new(5)),
            "reads should not multicast to the group"
        );
    }

    #[test]
    fn writes_use_group_half() {
        let mut p = OwnerGroupPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        p.train(&response_from(3, 5));
        p.train(&response_from(3, 5));
        p.train(&external(3, 7));
        p.train(&external(3, 7));
        let write = p.predict(&query(3, ReqType::GetExclusive));
        assert!(write.contains(NodeId::new(5)));
        assert!(write.contains(NodeId::new(7)));
    }

    #[test]
    fn write_sets_at_least_as_large_as_read_sets() {
        let mut p = OwnerGroupPredictor::new(Indexing::DataBlock, Capacity::Unbounded, &config());
        for node in [2, 4, 6] {
            p.train(&response_from(9, node));
            p.train(&external(9, node));
        }
        let read = p.predict(&query(9, ReqType::GetShared));
        let write = p.predict(&query(9, ReqType::GetExclusive));
        assert!(write.len() >= read.len(), "read {read} vs write {write}");
    }

    #[test]
    fn storage_is_sum_of_halves() {
        let p = OwnerGroupPredictor::new(Indexing::DataBlock, Capacity::ISCA03, &config());
        assert_eq!(DestSetPredictor::<4>::entry_payload_bits(&p), 5 + 37);
        assert!(DestSetPredictor::<4>::storage_bits(&p) > 0);
        assert_eq!(DestSetPredictor::<4>::name(&p), "Owner/Group");
    }
}
