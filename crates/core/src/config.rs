//! Builder-style predictor configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsp_types::SystemConfig;

use crate::index::Indexing;
use crate::policies::{
    AlwaysBroadcastPredictor, AlwaysMinimalPredictor, BroadcastIfSharedPredictor, GroupPredictor,
    OwnerGroupPredictor, OwnerPredictor, RandomPredictor, StickySpatialPredictor,
    TwoLevelOwnerPredictor,
};
use crate::table::Capacity;
use crate::DestSetPredictor;

/// Which prediction policy a [`PredictorConfig`] builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// [`OwnerPredictor`].
    Owner,
    /// [`BroadcastIfSharedPredictor`].
    BroadcastIfShared,
    /// [`GroupPredictor`].
    Group,
    /// [`OwnerGroupPredictor`].
    OwnerGroup,
    /// [`TwoLevelOwnerPredictor`] (related-work extension).
    TwoLevelOwner,
    /// [`StickySpatialPredictor`] with the given neighbor span.
    StickySpatial {
        /// Neighbor entries aggregated on each side (1 in prior work).
        span: usize,
    },
    /// [`AlwaysBroadcastPredictor`] (snooping endpoint).
    AlwaysBroadcast,
    /// [`AlwaysMinimalPredictor`] (directory endpoint).
    AlwaysMinimal,
    /// [`RandomPredictor`] — adversarial stress configuration.
    Random {
        /// Seed for reproducible chaos.
        seed: u64,
    },
}

/// Declarative description of a predictor: policy + indexing + capacity.
///
/// One `PredictorConfig` describes the predictor placed in *each* L2
/// controller; evaluation harnesses call [`PredictorConfig::build`] once
/// per node.
///
/// # Example
///
/// ```
/// use dsp_core::{Capacity, Indexing, PredictorConfig};
/// use dsp_types::SystemConfig;
///
/// let config = PredictorConfig::owner_group()
///     .indexing(Indexing::Macroblock { bytes: 1024 })
///     .entries(Capacity::ISCA03);
/// let predictor = config.build(&SystemConfig::isca03());
/// assert_eq!(predictor.name(), "Owner/Group");
/// assert!(config.label().contains("1024B macroblock"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    policy: PolicyKind,
    indexing: Indexing,
    capacity: Capacity,
}

impl PredictorConfig {
    /// An [`OwnerPredictor`] configuration (paper defaults: data-block
    /// indexing, 8192-entry 4-way table).
    pub fn owner() -> Self {
        Self::with_policy(PolicyKind::Owner)
    }

    /// A [`BroadcastIfSharedPredictor`] configuration.
    pub fn broadcast_if_shared() -> Self {
        Self::with_policy(PolicyKind::BroadcastIfShared)
    }

    /// A [`GroupPredictor`] configuration.
    pub fn group() -> Self {
        Self::with_policy(PolicyKind::Group)
    }

    /// An [`OwnerGroupPredictor`] configuration.
    pub fn owner_group() -> Self {
        Self::with_policy(PolicyKind::OwnerGroup)
    }

    /// A [`TwoLevelOwnerPredictor`] configuration (related-work
    /// extension: confidence-gated owner prediction).
    pub fn two_level_owner() -> Self {
        Self::with_policy(PolicyKind::TwoLevelOwner)
    }

    /// A [`StickySpatialPredictor`] configuration (prior work; untagged
    /// direct-mapped, so `ways` is ignored and `entries` is its size).
    pub fn sticky_spatial(span: usize) -> Self {
        PredictorConfig {
            policy: PolicyKind::StickySpatial { span },
            indexing: Indexing::DataBlock,
            capacity: Capacity::Finite {
                entries: 4096,
                ways: 1,
            },
        }
    }

    /// The broadcast-snooping endpoint.
    pub fn always_broadcast() -> Self {
        Self::with_policy(PolicyKind::AlwaysBroadcast)
    }

    /// The directory endpoint.
    pub fn always_minimal() -> Self {
        Self::with_policy(PolicyKind::AlwaysMinimal)
    }

    /// An adversarial random predictor (protocol stress testing only).
    pub fn random(seed: u64) -> Self {
        Self::with_policy(PolicyKind::Random { seed })
    }

    fn with_policy(policy: PolicyKind) -> Self {
        PredictorConfig {
            policy,
            indexing: Indexing::DataBlock,
            capacity: Capacity::ISCA03,
        }
    }

    /// Sets the indexing scheme.
    #[must_use]
    pub fn indexing(mut self, indexing: Indexing) -> Self {
        self.indexing = indexing;
        self
    }

    /// Sets the table capacity.
    #[must_use]
    pub fn entries(mut self, capacity: Capacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// The configured policy.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// The configured indexing scheme.
    pub fn indexing_scheme(&self) -> Indexing {
        self.indexing
    }

    /// The configured capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Builds one predictor instance (one per node in a full system).
    ///
    /// # Panics
    ///
    /// Panics if a Sticky-Spatial configuration is given an unbounded or
    /// non-power-of-two capacity (the prior-work design is inherently a
    /// fixed direct-mapped array).
    pub fn build(&self, config: &SystemConfig) -> Box<dyn DestSetPredictor> {
        self.build_width::<4>(config)
    }

    /// Builds the configured predictor at an explicit destination-set
    /// word width `W` (the width-generic form of
    /// [`PredictorConfig::build`]; `build` is `build_width::<4>`).
    ///
    /// The timing simulator monomorphizes its hot path per width and
    /// calls this with `W = 1` for ≤ 64-node systems.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`PredictorConfig::build`].
    pub fn build_width<const W: usize>(
        &self,
        config: &SystemConfig,
    ) -> Box<dyn DestSetPredictor<W>> {
        match self.policy {
            PolicyKind::Owner => {
                Box::new(OwnerPredictor::new(self.indexing, self.capacity, config))
            }
            PolicyKind::BroadcastIfShared => Box::new(BroadcastIfSharedPredictor::new(
                self.indexing,
                self.capacity,
                config,
            )),
            PolicyKind::Group => {
                Box::new(GroupPredictor::new(self.indexing, self.capacity, config))
            }
            PolicyKind::OwnerGroup => Box::new(OwnerGroupPredictor::new(
                self.indexing,
                self.capacity,
                config,
            )),
            PolicyKind::TwoLevelOwner => Box::new(TwoLevelOwnerPredictor::new(
                self.indexing,
                self.capacity,
                config,
            )),
            PolicyKind::StickySpatial { span } => {
                let entries = match self.capacity {
                    Capacity::Finite { entries, .. } => entries,
                    Capacity::Unbounded => {
                        panic!("Sticky-Spatial requires a finite capacity (it is untagged)")
                    }
                };
                Box::new(StickySpatialPredictor::new(entries, span, config))
            }
            PolicyKind::AlwaysBroadcast => Box::new(AlwaysBroadcastPredictor::new(config)),
            PolicyKind::AlwaysMinimal => Box::new(AlwaysMinimalPredictor::new()),
            PolicyKind::Random { seed } => Box::new(RandomPredictor::new(seed, config)),
        }
    }

    /// A descriptive label, e.g.
    /// `"Group, 1024B macroblock, 8192 entries"`.
    pub fn label(&self) -> String {
        let policy = match self.policy {
            PolicyKind::Owner => "Owner".to_string(),
            PolicyKind::BroadcastIfShared => "Broadcast-If-Shared".to_string(),
            PolicyKind::Group => "Group".to_string(),
            PolicyKind::OwnerGroup => "Owner/Group".to_string(),
            PolicyKind::TwoLevelOwner => "Two-Level Owner".to_string(),
            PolicyKind::StickySpatial { span } => format!("Sticky-Spatial({span})"),
            PolicyKind::AlwaysBroadcast => return "Broadcast Snooping".to_string(),
            PolicyKind::AlwaysMinimal => return "Directory".to_string(),
            PolicyKind::Random { seed } => return format!("Random(seed={seed})"),
        };
        let capacity = match self.capacity {
            Capacity::Unbounded => "unbounded".to_string(),
            Capacity::Finite { entries, .. } => format!("{entries} entries"),
        };
        format!("{policy}, {}, {capacity}", self.indexing.label())
    }
}

impl fmt::Display for PredictorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_policy() {
        let sys = SystemConfig::isca03();
        let configs = [
            PredictorConfig::owner(),
            PredictorConfig::broadcast_if_shared(),
            PredictorConfig::group(),
            PredictorConfig::owner_group(),
            PredictorConfig::sticky_spatial(1),
            PredictorConfig::always_broadcast(),
            PredictorConfig::always_minimal(),
        ];
        for c in configs {
            let p = c.build(&sys);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn builder_chain() {
        let c = PredictorConfig::group()
            .indexing(Indexing::ProgramCounter)
            .entries(Capacity::Unbounded);
        assert_eq!(c.indexing_scheme(), Indexing::ProgramCounter);
        assert_eq!(c.capacity(), Capacity::Unbounded);
        assert_eq!(c.policy(), PolicyKind::Group);
    }

    #[test]
    fn labels() {
        assert_eq!(
            PredictorConfig::group().label(),
            "Group, 64B block, 8192 entries"
        );
        assert_eq!(
            PredictorConfig::always_broadcast().label(),
            "Broadcast Snooping"
        );
        assert_eq!(PredictorConfig::always_minimal().to_string(), "Directory");
        assert!(PredictorConfig::owner()
            .entries(Capacity::Unbounded)
            .label()
            .contains("unbounded"));
    }

    #[test]
    #[should_panic(expected = "finite capacity")]
    fn sticky_rejects_unbounded() {
        let _ = PredictorConfig::sticky_spatial(1)
            .entries(Capacity::Unbounded)
            .build(&SystemConfig::isca03());
    }

    #[test]
    fn default_capacity_is_isca03() {
        assert_eq!(PredictorConfig::group().capacity(), Capacity::ISCA03);
    }
}
