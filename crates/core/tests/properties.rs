//! Property-based tests over the predictor framework.
//!
//! Invariants checked for every policy under arbitrary interleavings of
//! queries and training events:
//!
//! 1. Predictions are always supersets of the minimal destination set.
//! 2. Predictions never name nodes outside the system.
//! 3. Finite tables never exceed their configured capacity.
//! 4. Predictors are deterministic: the same history yields the same
//!    prediction.

use proptest::prelude::*;

use dsp_core::{Capacity, DestSetPredictor, Indexing, PredictQuery, PredictorConfig, TrainEvent};
use dsp_types::{BlockAddr, DestSet, NodeId, Owner, Pc, ReqType, SystemConfig};

const NODES: usize = 16;

fn all_configs() -> Vec<PredictorConfig> {
    let caps = [
        Capacity::Unbounded,
        Capacity::Finite {
            entries: 64,
            ways: 4,
        },
    ];
    let idx = [
        Indexing::DataBlock,
        Indexing::Macroblock { bytes: 256 },
        Indexing::Macroblock { bytes: 1024 },
        Indexing::ProgramCounter,
    ];
    let mut configs = Vec::new();
    for cap in caps {
        for ix in idx {
            configs.push(PredictorConfig::owner().indexing(ix).entries(cap));
            configs.push(
                PredictorConfig::broadcast_if_shared()
                    .indexing(ix)
                    .entries(cap),
            );
            configs.push(PredictorConfig::group().indexing(ix).entries(cap));
            configs.push(PredictorConfig::owner_group().indexing(ix).entries(cap));
            configs.push(PredictorConfig::two_level_owner().indexing(ix).entries(cap));
        }
    }
    configs.push(PredictorConfig::sticky_spatial(1));
    configs.push(
        PredictorConfig::sticky_spatial(2).entries(Capacity::Finite {
            entries: 64,
            ways: 1,
        }),
    );
    configs.push(PredictorConfig::always_broadcast());
    configs.push(PredictorConfig::always_minimal());
    configs.push(PredictorConfig::random(12345));
    configs
}

#[derive(Clone, Debug)]
enum Step {
    Query {
        block: u64,
        pc: u64,
        requester: usize,
        exclusive: bool,
    },
    Response {
        block: u64,
        pc: u64,
        responder: Option<usize>,
        exclusive: bool,
        sufficient: bool,
    },
    External {
        block: u64,
        requester: usize,
        exclusive: bool,
    },
    Reissue {
        block: u64,
        mask: u16,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..128, 0u64..64, 0usize..NODES, any::<bool>()).prop_map(
            |(block, pc, requester, exclusive)| Step::Query {
                block,
                pc: 0x1000 + pc * 4,
                requester,
                exclusive
            }
        ),
        (
            0u64..128,
            0u64..64,
            proptest::option::of(0usize..NODES),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(
                |(block, pc, responder, exclusive, sufficient)| Step::Response {
                    block,
                    pc: 0x1000 + pc * 4,
                    responder,
                    exclusive,
                    sufficient
                }
            ),
        (0u64..128, 0usize..NODES, any::<bool>()).prop_map(|(block, requester, exclusive)| {
            Step::External {
                block,
                requester,
                exclusive,
            }
        }),
        (0u64..128, any::<u16>()).prop_map(|(block, mask)| Step::Reissue { block, mask }),
    ]
}

fn run_steps(predictor: &mut dyn DestSetPredictor, steps: &[Step]) -> Vec<DestSet> {
    let mut predictions = Vec::new();
    for step in steps {
        match *step {
            Step::Query {
                block,
                pc,
                requester,
                exclusive,
            } => {
                let block = BlockAddr::new(block);
                let requester = NodeId::new(requester);
                let minimal = DestSet::single(requester).with(block.home(NODES));
                let q = PredictQuery {
                    block,
                    pc: Pc::new(pc),
                    requester,
                    req: if exclusive {
                        ReqType::GetExclusive
                    } else {
                        ReqType::GetShared
                    },
                    minimal,
                };
                let prediction = predictor.predict(&q);
                assert!(
                    prediction.is_superset(minimal),
                    "{}: prediction {prediction} lost minimal {minimal}",
                    predictor.name()
                );
                assert!(
                    prediction.is_subset(DestSet::broadcast(NODES)),
                    "{}: prediction {prediction} names nodes outside the system",
                    predictor.name()
                );
                predictions.push(prediction);
            }
            Step::Response {
                block,
                pc,
                responder,
                exclusive,
                sufficient,
            } => {
                predictor.train(&TrainEvent::DataResponse {
                    block: BlockAddr::new(block),
                    pc: Pc::new(pc),
                    responder: match responder {
                        None => Owner::Memory,
                        Some(n) => Owner::Node(NodeId::new(n)),
                    },
                    req: if exclusive {
                        ReqType::GetExclusive
                    } else {
                        ReqType::GetShared
                    },
                    minimal_sufficient: sufficient,
                });
            }
            Step::External {
                block,
                requester,
                exclusive,
            } => {
                predictor.train(&TrainEvent::OtherRequest {
                    block: BlockAddr::new(block),
                    requester: NodeId::new(requester),
                    req: if exclusive {
                        ReqType::GetExclusive
                    } else {
                        ReqType::GetShared
                    },
                });
            }
            Step::Reissue { block, mask } => {
                predictor.train(&TrainEvent::Reissue {
                    block: BlockAddr::new(block),
                    corrected: DestSet::from_bits(mask as u64),
                });
            }
        }
    }
    predictions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predictions_are_superset_of_minimal_and_within_system(
        steps in proptest::collection::vec(step_strategy(), 1..200)
    ) {
        let sys = SystemConfig::isca03();
        for config in all_configs() {
            let mut p = config.build(&sys);
            run_steps(p.as_mut(), &steps);
        }
    }

    #[test]
    fn predictors_are_deterministic(
        steps in proptest::collection::vec(step_strategy(), 1..100)
    ) {
        let sys = SystemConfig::isca03();
        for config in [
            PredictorConfig::owner(),
            PredictorConfig::group(),
            PredictorConfig::owner_group(),
            PredictorConfig::broadcast_if_shared(),
            PredictorConfig::sticky_spatial(1),
        ] {
            let mut a = config.build(&sys);
            let mut b = config.build(&sys);
            let pa = run_steps(a.as_mut(), &steps);
            let pb = run_steps(b.as_mut(), &steps);
            prop_assert_eq!(pa, pb, "{} not deterministic", config.label());
        }
    }

    #[test]
    fn storage_accounting_is_monotonic_for_unbounded(
        steps in proptest::collection::vec(step_strategy(), 1..100)
    ) {
        let sys = SystemConfig::isca03();
        let config = PredictorConfig::group().entries(Capacity::Unbounded);
        let mut p = config.build(&sys);
        let mut last = p.storage_bits();
        for chunk in steps.chunks(10) {
            run_steps(p.as_mut(), chunk);
            let now = p.storage_bits();
            prop_assert!(now >= last, "unbounded storage shrank: {last} -> {now}");
            last = now;
        }
    }
}
