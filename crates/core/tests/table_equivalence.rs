//! Property tests pinning the rebuilt [`PredictorTable`] to the seed
//! implementation ([`ReferencePredictorTable`]).
//!
//! The rebuilt table stores finite sets in flat tag/stamp/entry arrays
//! and unbounded entries in the shared open-addressing table; the seed
//! used per-set `Vec`s and a `HashMap`. These tests drive both through
//! identical operation sequences — the lookup/train mix every policy
//! layer produces — and require identical observable behavior: lookup
//! results, train outcomes, entry contents, live counts, eviction
//! choices (visible through which keys survive), and [`TableStats`] to
//! the last counter.

use proptest::prelude::*;

use dsp_core::{Capacity, PredictorTable, ReferencePredictorTable, TableStats};

#[derive(Clone, Copy, Debug)]
enum Op {
    Lookup { key: u64 },
    Train { key: u64, allocate: bool, val: u32 },
}

fn ops(key_space: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..key_space).prop_map(|key| Op::Lookup { key }),
            (0..key_space, any::<bool>(), any::<u32>())
                .prop_map(|(key, allocate, val)| Op::Train { key, allocate, val }),
        ],
        1..400,
    )
}

/// Drives both tables through `ops` and asserts equivalence after every
/// step; returns the final stats for a final cross-check.
fn check_equivalence(capacity: Capacity, ops: &[Op]) -> TableStats {
    let mut fast: PredictorTable<u32> = PredictorTable::new(capacity);
    let mut seed: ReferencePredictorTable<u32> = ReferencePredictorTable::new(capacity);
    for op in ops {
        match *op {
            Op::Lookup { key } => {
                assert_eq!(fast.lookup(key), seed.lookup(key), "lookup({key})");
            }
            Op::Train { key, allocate, val } => {
                let a = fast.train(key, allocate, |e| *e = e.wrapping_add(val));
                let b = seed.train(key, allocate, |e| *e = e.wrapping_add(val));
                assert_eq!(a, b, "train({key}, allocate={allocate})");
            }
        }
        assert_eq!(fast.len(), seed.len());
        assert_eq!(fast.stats(), seed.stats());
    }
    // Every key of the space reads identically at the end — this checks
    // the *eviction victims* matched, not just the counts.
    let space = ops
        .iter()
        .map(|op| match op {
            Op::Lookup { key } | Op::Train { key, .. } => *key,
        })
        .max()
        .unwrap_or(0);
    for key in 0..=space {
        assert_eq!(fast.lookup(key), seed.lookup(key), "final lookup({key})");
    }
    assert_eq!(fast.stats(), seed.stats());
    fast.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Unbounded storage: the open-addressing table matches the seed
    /// `HashMap` byte for byte in observable behavior.
    #[test]
    fn unbounded_matches_seed(ops in ops(512)) {
        check_equivalence(Capacity::Unbounded, &ops);
    }

    /// A tiny single-set table maximizes eviction pressure: every
    /// allocation past 4 live keys picks an LRU victim, so any
    /// divergence in recency bookkeeping or victim choice surfaces
    /// immediately.
    #[test]
    fn single_set_eviction_storm_matches_seed(ops in ops(24)) {
        let stats = check_equivalence(
            Capacity::Finite { entries: 4, ways: 4 },
            &ops,
        );
        // The key space is 6x the capacity; long sequences must evict.
        if ops.len() > 100 {
            prop_assert!(stats.lookups + stats.allocations > 0);
        }
    }

    /// Multi-set geometry with colliding tags (key space well above the
    /// set count) exercises tag disambiguation and per-set LRU at once.
    #[test]
    fn set_associative_matches_seed(ops in ops(256)) {
        check_equivalence(
            Capacity::Finite { entries: 32, ways: 4 },
            &ops,
        );
    }

    /// Direct-mapped (1-way) tables evict on every conflicting
    /// allocation — the degenerate LRU case.
    #[test]
    fn direct_mapped_matches_seed(ops in ops(128)) {
        check_equivalence(
            Capacity::Finite { entries: 16, ways: 1 },
            &ops,
        );
    }
}
