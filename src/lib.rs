//! # Destination-Set Prediction
//!
//! Umbrella crate for the reproduction of Martin, Harper, Sorin, Hill, and
//! Wood, *Using Destination-Set Prediction to Improve the Latency/Bandwidth
//! Tradeoff in Shared-Memory Multiprocessors*, ISCA 2003.
//!
//! Re-exports the whole stack under one roof:
//!
//! * [`types`] — node ids, destination sets, addresses, MOSI states.
//! * [`trace`] — synthetic commercial-workload coherence trace generators.
//! * [`coherence`] — global MOSI tracking, miss classification, and
//!   multicast-snooping sufficiency checking.
//! * [`predictors`] — **the paper's contribution**: the destination-set
//!   predictor framework and the Owner, Broadcast-If-Shared, Group,
//!   Owner/Group, and Sticky-Spatial policies.
//! * [`cache`] — set-associative cache models.
//! * [`interconnect`] — totally ordered crossbar with contention.
//! * [`sim`] — discrete-event timing simulation of the three protocols.
//! * [`analysis`] — workload characterization and the latency/bandwidth
//!   tradeoff evaluation that regenerates the paper's tables and figures.
//! * [`verify`] — an explicit-state model checker proving the multicast
//!   protocol safe and live under *any* destination-set prediction.
//!
//! # Quickstart
//!
//! ```
//! use dsp::prelude::*;
//!
//! // A 16-node system and a small synthetic OLTP-like trace.
//! let config = SystemConfig::isca03();
//! let workload = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 256.0);
//! let trace: Vec<_> = workload.generator(42).take(20_000).collect();
//!
//! // Evaluate the Group predictor (one instance per node) against it.
//! let predictor = PredictorConfig::group()
//!     .indexing(Indexing::Macroblock { bytes: 1024 })
//!     .entries(Capacity::Finite { entries: 8192, ways: 4 });
//! let point = TradeoffEvaluator::new(&config)
//!     .warmup(5_000)
//!     .run(trace.iter().copied(), &predictor);
//! println!(
//!     "Group: {:.1} request msgs/miss, {:.1}% indirections",
//!     point.request_messages_per_miss(),
//!     point.indirection_pct()
//! );
//! ```

pub use dsp_analysis as analysis;
pub use dsp_cache as cache;
pub use dsp_coherence as coherence;
pub use dsp_core as predictors;
pub use dsp_interconnect as interconnect;
pub use dsp_sim as sim;
pub use dsp_trace as trace;
pub use dsp_types as types;
pub use dsp_verify as verify;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use dsp_analysis::{CharacterizationReport, RuntimeEvaluator, TradeoffEvaluator};
    pub use dsp_coherence::{CoherenceTracker, MissClass, MulticastOutcome};
    pub use dsp_core::{
        Capacity, DestSetPredictor, Indexing, PredictQuery, PredictorConfig, TrainEvent,
    };
    pub use dsp_sim::{CpuModel, ProtocolKind, SimConfig, System, TargetSystem};
    pub use dsp_trace::{TraceRecord, Workload, WorkloadSpec};
    pub use dsp_types::{
        AccessKind, Address, BlockAddr, DestSet, LineState, MacroblockAddr, NodeId, Owner, Pc,
        ReqType, SystemConfig,
    };
}
